"""Client-side handles: the application's view of remote FCMs.

A :class:`FcmHandle` wraps one FCM's SEID: it caches the FCM's state
(refreshed via ``fcm.get_state`` and kept live by ``fcm.state.*`` events)
and issues commands through the message system.  An
:class:`ApplianceHandle` groups the FCM handles of one device.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.app.commands import Command, CommandSpine
from repro.havi.capabilities import CapabilityDescriptor
from repro.havi.element import SoftwareElement
from repro.havi.events import HaviEvent
from repro.havi.messaging import HaviMessage
from repro.havi.seid import SEID

StateListener = Callable[[str, object], None]

#: How many recent error strings a handle keeps (``errors_total`` keeps
#: counting past the cap).
ERRORS_KEPT = 32


class FcmHandle:
    """The application's live handle to one remote FCM."""

    def __init__(self, app: SoftwareElement, seid: SEID,
                 attributes: dict,
                 spine: Optional[CommandSpine] = None) -> None:
        self.app = app
        self.seid = seid
        #: The command spine this handle dispatches through; standalone
        #: handles (tests, tools) get a private spine with a private log.
        self.spine = spine if spine is not None else CommandSpine(app)
        self.fcm_type: str = str(attributes.get("fcm.type", "unknown"))
        self.device_guid: str = str(attributes.get("device.guid", ""))
        self.device_name: str = str(attributes.get("device.name", "?"))
        self.device_class: str = str(attributes.get("device.class", "?"))
        #: Descriptor version advertised through the registry; the
        #: application uses it as a cache key for the full descriptor.
        self.capability_version: int = int(
            attributes.get("capability.version", 0) or 0)
        #: Filled in by the application from its descriptor cache (None
        #: until the ``capabilities.get`` reply lands, or for pre-
        #: capability FCMs that declare nothing).
        self.descriptor: Optional[CapabilityDescriptor] = None
        #: GUID prefix for widget ids; the composer may lengthen it when
        #: two devices' GUIDs collide on the first 8 digits.
        self.guid_prefix: str = self.device_guid[:8]
        self.state: dict[str, object] = {}
        self.listeners: list[StateListener] = []
        self.commands_sent = 0
        self.errors: list[str] = []
        self.errors_total = 0

    # -- commands -----------------------------------------------------------

    def command(self, opcode: str, payload: dict | None = None,
                on_reply: Optional[Callable[[HaviMessage], None]] = None,
                origin: str = "api") -> Command:
        """Submit one FCM command through the spine; errors are recorded,
        not raised.  Returns the tracked :class:`Command`."""
        self.commands_sent += 1

        def handle_reply(message: HaviMessage) -> None:
            if message.status != "SUCCESS":
                self.errors_total += 1
                self.errors.append(
                    f"{opcode}: {message.status} "
                    f"{message.payload.get('detail', '')}".strip())
                if len(self.errors) > ERRORS_KEPT:
                    del self.errors[:-ERRORS_KEPT]
            if on_reply is not None:
                on_reply(message)

        return self.spine.submit(self.seid, opcode, payload or {},
                                 origin=origin, on_reply=handle_reply)

    @property
    def inflight(self) -> list[Command]:
        """This handle's slice of the spine's inflight table."""
        return self.spine.inflight_for(self.seid)

    def command_stats(self) -> dict:
        """Per-handle command accounting for diagnostics/reports."""
        return {
            "commands_sent": self.commands_sent,
            "errors_total": self.errors_total,
            "errors_kept": len(self.errors),
            "inflight": len(self.inflight),
        }

    def refresh(self) -> None:
        """Pull the full state snapshot (used right after discovery)."""

        def absorb(message: HaviMessage) -> None:
            if message.status != "SUCCESS":
                return
            for key, value in message.payload.get("state", {}).items():
                self._set(key, value)

        self.command("fcm.get_state", on_reply=absorb, origin="app")

    # -- state tracking -------------------------------------------------------

    def subscribe(self, listener: StateListener) -> StateListener:
        """Register a state listener; returns it for later unsubscribe."""
        self.listeners.append(listener)
        return listener

    def unsubscribe(self, listener: StateListener) -> None:
        """Remove a listener; tolerates double-removal (panel teardown
        can race a rebuild that already dropped the handle)."""
        try:
            self.listeners.remove(listener)
        except ValueError:
            pass

    def _set(self, key: str, value: object) -> None:
        if self.state.get(key) == value and key in self.state:
            return
        self.state[key] = value
        for listener in list(self.listeners):
            listener(key, value)

    def on_event(self, event: HaviEvent) -> None:
        """Absorb an ``fcm.state.*`` event addressed to this FCM."""
        key = event.payload.get("key")
        if key is not None:
            self._set(str(key), event.payload.get("value"))

    def get(self, key: str, default: object = None) -> object:
        return self.state.get(key, default)


class ApplianceHandle:
    """All FCM handles of one appliance (grouped by device GUID)."""

    def __init__(self, guid: str, name: str, device_class: str) -> None:
        self.guid = guid
        self.name = name
        self.device_class = device_class
        self.guid_prefix = guid[:8]
        self.fcms: list[FcmHandle] = []

    def add(self, handle: FcmHandle) -> None:
        self.fcms.append(handle)

    def fcm_by_type(self, fcm_type: str) -> Optional[FcmHandle]:
        for handle in self.fcms:
            if handle.fcm_type == fcm_type:
                return handle
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ApplianceHandle {self.name!r} "
                f"fcms={[h.fcm_type for h in self.fcms]}>")

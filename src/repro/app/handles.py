"""Client-side handles: the application's view of remote FCMs.

A :class:`FcmHandle` wraps one FCM's SEID: it caches the FCM's state
(refreshed via ``fcm.get_state`` and kept live by ``fcm.state.*`` events)
and issues commands through the message system.  An
:class:`ApplianceHandle` groups the FCM handles of one device.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.havi.capabilities import CapabilityDescriptor
from repro.havi.element import SoftwareElement
from repro.havi.events import HaviEvent
from repro.havi.messaging import HaviMessage
from repro.havi.seid import SEID

StateListener = Callable[[str, object], None]


class FcmHandle:
    """The application's live handle to one remote FCM."""

    def __init__(self, app: SoftwareElement, seid: SEID,
                 attributes: dict) -> None:
        self.app = app
        self.seid = seid
        self.fcm_type: str = str(attributes.get("fcm.type", "unknown"))
        self.device_guid: str = str(attributes.get("device.guid", ""))
        self.device_name: str = str(attributes.get("device.name", "?"))
        self.device_class: str = str(attributes.get("device.class", "?"))
        #: Descriptor version advertised through the registry; the
        #: application uses it as a cache key for the full descriptor.
        self.capability_version: int = int(
            attributes.get("capability.version", 0) or 0)
        #: Filled in by the application from its descriptor cache (None
        #: until the ``capabilities.get`` reply lands, or for pre-
        #: capability FCMs that declare nothing).
        self.descriptor: Optional[CapabilityDescriptor] = None
        #: GUID prefix for widget ids; the composer may lengthen it when
        #: two devices' GUIDs collide on the first 8 digits.
        self.guid_prefix: str = self.device_guid[:8]
        self.state: dict[str, object] = {}
        self.listeners: list[StateListener] = []
        self.commands_sent = 0
        self.errors: list[str] = []

    # -- commands -----------------------------------------------------------

    def command(self, opcode: str, payload: dict | None = None,
                on_reply: Optional[Callable[[HaviMessage], None]] = None
                ) -> None:
        """Send one FCM command; errors are recorded, not raised."""
        self.commands_sent += 1

        def handle_reply(message: HaviMessage) -> None:
            if message.status != "SUCCESS":
                self.errors.append(
                    f"{opcode}: {message.status} "
                    f"{message.payload.get('detail', '')}".strip())
            if on_reply is not None:
                on_reply(message)

        self.app.send_request(self.seid, opcode, payload or {},
                              on_reply=handle_reply)

    def refresh(self) -> None:
        """Pull the full state snapshot (used right after discovery)."""

        def absorb(message: HaviMessage) -> None:
            if message.status != "SUCCESS":
                return
            for key, value in message.payload.get("state", {}).items():
                self._set(key, value)

        self.command("fcm.get_state", on_reply=absorb)

    # -- state tracking -------------------------------------------------------

    def subscribe(self, listener: StateListener) -> StateListener:
        """Register a state listener; returns it for later unsubscribe."""
        self.listeners.append(listener)
        return listener

    def unsubscribe(self, listener: StateListener) -> None:
        """Remove a listener; tolerates double-removal (panel teardown
        can race a rebuild that already dropped the handle)."""
        try:
            self.listeners.remove(listener)
        except ValueError:
            pass

    def _set(self, key: str, value: object) -> None:
        if self.state.get(key) == value and key in self.state:
            return
        self.state[key] = value
        for listener in list(self.listeners):
            listener(key, value)

    def on_event(self, event: HaviEvent) -> None:
        """Absorb an ``fcm.state.*`` event addressed to this FCM."""
        key = event.payload.get("key")
        if key is not None:
            self._set(str(key), event.payload.get("value"))

    def get(self, key: str, default: object = None) -> object:
        return self.state.get(key, default)


class ApplianceHandle:
    """All FCM handles of one appliance (grouped by device GUID)."""

    def __init__(self, guid: str, name: str, device_class: str) -> None:
        self.guid = guid
        self.name = name
        self.device_class = device_class
        self.guid_prefix = guid[:8]
        self.fcms: list[FcmHandle] = []

    def add(self, handle: FcmHandle) -> None:
        self.fcms.append(handle)

    def fcm_by_type(self, fcm_type: str) -> Optional[FcmHandle]:
        for handle in self.fcms:
            if handle.fcm_type == fcm_type:
                return handle
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ApplianceHandle {self.name!r} "
                f"fcms={[h.fcm_type for h in self.fcms]}>")

"""The command spine: every actuation is one tracked, timeout-guarded job.

The paper's central claim — any interaction device drives any appliance
through one uniform control path — demands that actuations be first-class
objects rather than scattered fire-and-forget callbacks.  This module
reifies them:

* :class:`Command` — one actuation (seid, opcode, payload, origin) with a
  lifecycle state machine::

      QUEUED -> INFLIGHT -> DONE | FAILED | TIMED_OUT
        \\-> SUPERSEDED   (replaced while waiting behind an inflight write)

  Every command reaches exactly one terminal state; callers poll
  ``command.state`` or hook ``command.on_done``.

* :class:`CommandLog` — a per-home ring buffer journalling the most
  recent commands plus monotonic counters (total submitted, per-terminal-
  state, per-origin), so ``tools/report.py`` can render what the home has
  been told to do and how it went.

* :class:`CommandSpine` — the single dispatch point.  It mints commands,
  sends them through the owning software element with a messaging-layer
  timeout guard, and coalesces redundant same-opcode *writes*: while a
  ``*.set`` write to one (seid, opcode) lane is inflight, newer writes
  wait in a depth-1 slot and replace each other (last-write-wins; the
  replaced command terminates SUPERSEDED).  Non-idempotent opcodes
  (``*.toggle``, ``timer.add``, button verbs …) bypass coalescing and
  keep today's wire behavior exactly.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.havi.element import SoftwareElement
from repro.havi.messaging import HaviMessage
from repro.havi.seid import SEID
from repro.util.errors import ReproError

#: Default inflight deadline: generous against the sub-millisecond bus
#: latency, tight enough that a wedged appliance surfaces within a beat.
DEFAULT_TIMEOUT_S = 2.0

#: Recognised origins (informational; the spine accepts any string so new
#: modalities do not need a code change here).
ORIGINS = ("widget", "ddi", "voice", "gesture", "api", "app")


class CommandError(ReproError):
    """Command lifecycle misuse (e.g. finishing a terminal command)."""


class CommandState(enum.Enum):
    QUEUED = "queued"
    INFLIGHT = "inflight"
    DONE = "done"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    SUPERSEDED = "superseded"


TERMINAL_STATES = frozenset({
    CommandState.DONE,
    CommandState.FAILED,
    CommandState.TIMED_OUT,
    CommandState.SUPERSEDED,
})

DoneListener = Callable[["Command"], None]


class Command:
    """One tracked actuation job."""

    __slots__ = (
        "command_id", "seid", "opcode", "payload", "origin", "state",
        "status", "detail", "result", "transaction", "superseded_by",
        "created_s", "sent_s", "finished_s", "_done_listeners",
    )

    def __init__(self, command_id: int, seid: SEID, opcode: str,
                 payload: dict, origin: str, now: float) -> None:
        self.command_id = command_id
        self.seid = seid
        self.opcode = opcode
        self.payload = payload
        self.origin = origin
        self.state = CommandState.QUEUED
        #: Reply status ("SUCCESS", FCM error code, "ETIMEOUT", …).
        self.status: str = ""
        self.detail: str = ""
        #: Reply payload for DONE commands.
        self.result: Optional[dict] = None
        self.transaction: int = 0
        self.superseded_by: Optional[int] = None
        self.created_s = now
        self.sent_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self._done_listeners: list[DoneListener] = []

    # -- inspection ---------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def ok(self) -> bool:
        return self.state is CommandState.DONE

    @property
    def latency_s(self) -> Optional[float]:
        """Send-to-terminal virtual seconds (None until finished/sent)."""
        if self.finished_s is None or self.sent_s is None:
            return None
        return self.finished_s - self.sent_s

    def on_done(self, listener: DoneListener) -> "Command":
        """Run ``listener(command)`` at the terminal transition (or now,
        if the command already finished).  Returns self for chaining."""
        if self.done:
            listener(self)
        else:
            self._done_listeners.append(listener)
        return self

    def describe(self) -> dict:
        """A journal row (plain data, ready for the report renderer)."""
        return {
            "id": self.command_id,
            "seid": str(self.seid),
            "opcode": self.opcode,
            "origin": self.origin,
            "state": self.state.value,
            "status": self.status,
            "detail": self.detail,
            "latency_s": self.latency_s,
        }

    # -- transitions (spine-internal) ---------------------------------------

    def _mark_inflight(self, now: float, transaction: int) -> None:
        if self.state is not CommandState.QUEUED:
            raise CommandError(
                f"command {self.command_id} sent twice ({self.state})")
        self.state = CommandState.INFLIGHT
        self.sent_s = now
        self.transaction = transaction

    def _finish(self, state: CommandState, now: float, status: str = "",
                detail: str = "", result: Optional[dict] = None) -> None:
        if self.done:
            raise CommandError(
                f"command {self.command_id} already terminal ({self.state})")
        if state not in TERMINAL_STATES:
            raise CommandError(f"{state} is not a terminal state")
        self.state = state
        self.status = status
        self.detail = detail
        self.result = result
        self.finished_s = now
        listeners, self._done_listeners = self._done_listeners, []
        for listener in listeners:
            listener(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Command #{self.command_id} {self.opcode} -> {self.seid} "
                f"[{self.origin}] {self.state.value}>")


class CommandLog:
    """Per-home command journal: ring buffer + monotonic counters."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._ring: deque[Command] = deque(maxlen=capacity)
        self._next_id = 1
        self.submitted = 0
        self.terminal: dict[str, int] = {
            state.value: 0 for state in TERMINAL_STATES}
        self.by_origin: dict[str, int] = {}

    def allocate_id(self) -> int:
        command_id, self._next_id = self._next_id, self._next_id + 1
        return command_id

    def record(self, command: Command) -> None:
        self._ring.append(command)
        self.submitted += 1
        self.by_origin[command.origin] = \
            self.by_origin.get(command.origin, 0) + 1
        command.on_done(self._note_terminal)

    def _note_terminal(self, command: Command) -> None:
        self.terminal[command.state.value] += 1

    # -- queries ------------------------------------------------------------

    def journal(self, origin: Optional[str] = None,
                opcode: Optional[str] = None) -> list[Command]:
        """Most-recent-last commands still in the ring, filtered."""
        return [c for c in self._ring
                if (origin is None or c.origin == origin)
                and (opcode is None or c.opcode == opcode)]

    def open_commands(self) -> list[Command]:
        return [c for c in self._ring if not c.done]

    def stats(self) -> dict:
        return {
            "submitted": self.submitted,
            "in_ring": len(self._ring),
            "terminal": dict(self.terminal),
            "by_origin": dict(self.by_origin),
        }

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterable[Command]:
        return iter(self._ring)


@dataclass
class _Lane:
    """One (seid, opcode) coalescing lane: at most one inflight write and
    one waiting replacement."""

    inflight: Command
    queued: Optional[tuple[Command, Optional[Callable], Optional[float]]] \
        = None


def coalescible(opcode: str) -> bool:
    """Idempotent set-style writes coalesce; everything else must not
    (``timer.add`` twice means *add twice*, ``door.toggle`` twice means
    toggle back)."""
    return opcode.endswith(".set")


class CommandSpine:
    """The single dispatch point turning actuations into tracked jobs.

    One spine per requesting software element (an application, a DDI
    controller, the status monitor); all spines in a home usually share
    the home's :class:`CommandLog`.
    """

    def __init__(self, element: SoftwareElement,
                 log: Optional[CommandLog] = None,
                 timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        self.element = element
        self.log = log if log is not None else CommandLog()
        self.timeout_s = timeout_s
        self._lanes: dict[tuple[SEID, str], _Lane] = {}
        self._scheduler = element.messaging.scheduler
        self.dispatched = 0
        self.coalesced = 0

    # -- public API ---------------------------------------------------------

    def submit(self, seid: SEID, opcode: str, payload: dict | None = None,
               *, origin: str = "api",
               on_reply: Optional[Callable[[HaviMessage], None]] = None,
               timeout_s: Optional[float] = None,
               coalesce: Optional[bool] = None) -> Command:
        """Mint a :class:`Command` and dispatch (or coalesce) it.

        ``coalesce=None`` auto-detects from the opcode (see
        :func:`coalescible`); pass True/False to force.  ``on_reply``
        fires with the raw RESPONSE for DONE/FAILED/TIMED_OUT commands —
        never for SUPERSEDED ones, which are never sent.
        """
        now = self._scheduler.now()
        command = Command(self.log.allocate_id(), seid, opcode,
                          dict(payload) if payload else {}, origin, now)
        self.log.record(command)
        wants_lane = coalescible(opcode) if coalesce is None else coalesce
        if wants_lane:
            lane = self._lanes.get((seid, opcode))
            if lane is not None:
                if lane.queued is not None:
                    waiting = lane.queued[0]
                    waiting.superseded_by = command.command_id
                    waiting._finish(
                        CommandState.SUPERSEDED, now, status="ESUPERSEDED",
                        detail=f"replaced by command {command.command_id}")
                    self.coalesced += 1
                lane.queued = (command, on_reply, timeout_s)
                return command
        self._dispatch(command, on_reply, timeout_s, tracked=wants_lane)
        return command

    # -- per-handle views ---------------------------------------------------

    def inflight_for(self, seid: SEID) -> list[Command]:
        """Commands currently occupying lanes for one FCM (the per-handle
        inflight table)."""
        out = []
        for (lane_seid, _), lane in self._lanes.items():
            if lane_seid != seid:
                continue
            out.append(lane.inflight)
            if lane.queued is not None:
                out.append(lane.queued[0])
        return out

    @property
    def inflight_count(self) -> int:
        return sum(1 + (lane.queued is not None)
                   for lane in self._lanes.values())

    # -- dispatch machinery -------------------------------------------------

    def _dispatch(self, command: Command, on_reply, timeout_s,
                  tracked: bool) -> None:
        if tracked:
            self._lanes[(command.seid, command.opcode)] = _Lane(command)
        self.dispatched += 1

        def handle_reply(message: HaviMessage) -> None:
            self._complete(command, message, on_reply, tracked)

        transaction = self.element.send_request(
            command.seid, command.opcode, command.payload,
            on_reply=handle_reply,
            timeout_s=self.timeout_s if timeout_s is None else timeout_s)
        command._mark_inflight(self._scheduler.now(), transaction)

    def _complete(self, command: Command, message: HaviMessage,
                  on_reply, tracked: bool) -> None:
        now = self._scheduler.now()
        # free the lane (and launch the waiting replacement) before any
        # listener runs, so re-submissions from callbacks queue FIFO
        # behind the already-waiting write rather than jumping it
        if tracked:
            lane = self._lanes.pop((command.seid, command.opcode), None)
            if lane is not None and lane.queued is not None:
                next_command, next_reply, next_timeout = lane.queued
                self._dispatch(next_command, next_reply, next_timeout,
                               tracked=True)
        if message.status == "SUCCESS":
            # the reply payload is ours once delivered: no copy needed
            command._finish(CommandState.DONE, now, status="SUCCESS",
                            result=message.payload)
        elif message.status == "ETIMEOUT":
            command._finish(CommandState.TIMED_OUT, now, status="ETIMEOUT",
                            detail=str(message.payload.get("detail", "")))
        else:
            command._finish(CommandState.FAILED, now, status=message.status,
                            detail=str(message.payload.get("detail", "")))
        if on_reply is not None:
            on_reply(message)

    def stats(self) -> dict:
        return {
            "dispatched": self.dispatched,
            "coalesced": self.coalesced,
            "lanes_open": len(self._lanes),
        }

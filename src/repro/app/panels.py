"""Per-FCM control panel builders.

Each builder takes an :class:`~repro.app.handles.FcmHandle` and returns a
toolkit :class:`~repro.toolkit.Panel` whose widgets

* send FCM commands when the user operates them, and
* follow the FCM's state via the handle's listeners (so a channel changed
  from *any* device updates every panel showing it).

Widget ids follow ``<guid8>.<fcm_type>.<name>`` so tests and demos can
locate live widgets deterministically.
"""

from __future__ import annotations

from typing import Callable

from repro.app.handles import FcmHandle
from repro.toolkit import (
    Button,
    Column,
    Label,
    ListBox,
    Panel,
    ProgressBar,
    Row,
    Slider,
    Spacer,
    TextField,
    ToggleButton,
)
from repro.toolkit.widget import Widget

PanelBuilder = Callable[[FcmHandle], Panel]


def _wid(handle: FcmHandle, name: str) -> str:
    return f"{handle.device_guid[:8]}.{handle.fcm_type}.{name}"


def _power_toggle(handle: FcmHandle) -> ToggleButton:
    toggle = ToggleButton("Power", value=bool(handle.get("power", False)))
    toggle.widget_id = _wid(handle, "power")
    toggle.on_activate = lambda w: handle.command("power.set",
                                                  {"on": w.value})

    def follow(key: str, value: object) -> None:
        if key == "power":
            toggle.value = bool(value)

    handle.listeners.append(follow)
    return toggle


def build_tuner_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name} tuner")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    station = Label(f"CH {handle.get('channel', 1)} "
                    f"{handle.get('station', '')}")
    station.widget_id = _wid(handle, "station")
    top.add(station)
    top.add(Spacer())
    panel.add(top)

    channels = Row(padding=0)
    down = Button("CH-", on_click=lambda w: handle.command("channel.down"))
    down.widget_id = _wid(handle, "ch-down")
    up = Button("CH+", on_click=lambda w: handle.command("channel.up"))
    up.widget_id = _wid(handle, "ch-up")
    channels.add(down)
    channels.add(up)
    entry = TextField(max_length=2)
    entry.widget_id = _wid(handle, "ch-entry")

    def submit_channel(widget: Widget) -> None:
        if widget.text.isdigit():
            handle.command("channel.set", {"channel": int(widget.text)})
        widget.clear()

    entry.on_activate = submit_channel
    channels.add(entry)
    channels.add(Spacer())
    panel.add(channels)

    volume_row = Row(padding=0)
    volume_row.add(Label("Vol"))
    volume = Slider(0, 100, value=int(handle.get("volume", 0)), step=5)
    volume.widget_id = _wid(handle, "volume")
    volume.layout_stretch = 1
    volume.on_activate = lambda w: handle.command("volume.set",
                                                  {"volume": w.value})
    volume_row.add(volume)
    mute = ToggleButton("Mute", value=bool(handle.get("mute", False)))
    mute.widget_id = _wid(handle, "mute")
    mute.on_activate = lambda w: handle.command("mute.set", {"on": w.value})
    volume_row.add(mute)
    panel.add(volume_row)

    def follow(key: str, value: object) -> None:
        if key in ("channel", "station"):
            station.text = (f"CH {handle.get('channel', 1)} "
                            f"{handle.get('station', '')}")
        elif key == "volume":
            volume.value = int(value)  # type: ignore[arg-type]
        elif key == "mute":
            mute.value = bool(value)

    handle.listeners.append(follow)
    return panel


def build_display_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name} screen")
    sources = ListBox(["tuner", "vcr", "dvd"])
    sources.widget_id = _wid(handle, "source")
    sources.on_activate = lambda w: handle.command(
        "source.set", {"source": w.selected_item})
    panel.add(sources)

    bright_row = Row(padding=0)
    bright_row.add(Label("Bright"))
    brightness = Slider(0, 100, value=int(handle.get("brightness", 50)),
                        step=10)
    brightness.widget_id = _wid(handle, "brightness")
    brightness.layout_stretch = 1
    brightness.on_activate = lambda w: handle.command(
        "brightness.set", {"brightness": w.value})
    bright_row.add(brightness)
    panel.add(bright_row)

    def follow(key: str, value: object) -> None:
        if key == "brightness":
            brightness.value = int(value)  # type: ignore[arg-type]
        elif key == "source":
            items = sources.items
            if value in items:
                sources.selected = items.index(value)
                sources.invalidate()

    handle.listeners.append(follow)
    return panel


def build_vcr_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name} deck")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    status = Label(str(handle.get("transport", "stop")).upper())
    status.widget_id = _wid(handle, "transport")
    top.add(status)
    counter = Label(f"{float(handle.get('counter', 0.0)):07.1f}")
    counter.widget_id = _wid(handle, "counter")
    top.add(counter)
    top.add(Spacer())
    panel.add(top)

    transport = Row(padding=0)
    for caption, opcode in (("<<", "transport.rew"), (">", "transport.play"),
                            ("||", "transport.pause"), ("[]",
                                                        "transport.stop"),
                            (">>", "transport.ff"), ("REC",
                                                     "transport.record")):
        button = Button(caption,
                        on_click=lambda w, op=opcode: handle.command(op))
        button.widget_id = _wid(handle, opcode.rsplit(".", 1)[1])
        transport.add(button)
    panel.add(transport)

    eject = Button("Eject", on_click=lambda w: handle.command("tape.eject"))
    eject.widget_id = _wid(handle, "eject")
    panel.add(eject)

    def follow(key: str, value: object) -> None:
        if key == "transport":
            status.text = str(value).upper()
        elif key == "counter":
            counter.text = f"{float(value):07.1f}"  # type: ignore[arg-type]
        elif key == "tape_loaded":
            eject.text = "Eject" if value else "No tape"

    handle.listeners.append(follow)
    return panel


def build_amplifier_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    mute = ToggleButton("Mute", value=bool(handle.get("mute", False)))
    mute.widget_id = _wid(handle, "mute")
    mute.on_activate = lambda w: handle.command("mute.set", {"on": w.value})
    top.add(mute)
    top.add(Spacer())
    panel.add(top)

    volume_row = Row(padding=0)
    volume_row.add(Label("Vol"))
    volume = Slider(0, 100, value=int(handle.get("volume", 0)), step=5)
    volume.widget_id = _wid(handle, "volume")
    volume.layout_stretch = 1
    volume.on_activate = lambda w: handle.command("volume.set",
                                                  {"volume": w.value})
    volume_row.add(volume)
    panel.add(volume_row)

    sources = ListBox(["cd", "tuner", "aux", "tv"])
    sources.widget_id = _wid(handle, "source")
    sources.on_activate = lambda w: handle.command(
        "source.set", {"source": w.selected_item})
    panel.add(sources)

    def follow(key: str, value: object) -> None:
        if key == "volume":
            volume.value = int(value)  # type: ignore[arg-type]
        elif key == "mute":
            mute.value = bool(value)
        elif key == "source":
            items = sources.items
            if value in items:
                sources.selected = items.index(value)
                sources.invalidate()

    handle.listeners.append(follow)
    return panel


def build_av_disc_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    status = Label(str(handle.get("playback", "stop")).upper())
    status.widget_id = _wid(handle, "playback")
    top.add(status)
    chapter = Label(f"Ch {handle.get('chapter', 1)}")
    chapter.widget_id = _wid(handle, "chapter")
    top.add(chapter)
    top.add(Spacer())
    panel.add(top)

    transport = Row(padding=0)
    for caption, opcode in (("|<", "chapter.prev"), (">", "playback.play"),
                            ("||", "playback.pause"),
                            ("[]", "playback.stop"), (">|", "chapter.next")):
        button = Button(caption,
                        on_click=lambda w, op=opcode: handle.command(op))
        button.widget_id = _wid(handle, opcode.replace(".", "-"))
        transport.add(button)
    panel.add(transport)

    tray = Button("Open/Close")
    tray.widget_id = _wid(handle, "tray")
    tray.on_activate = lambda w: handle.command(
        "tray.close" if handle.get("tray_open") else "tray.open")
    panel.add(tray)

    def follow(key: str, value: object) -> None:
        if key == "playback":
            status.text = str(value).upper()
        elif key == "chapter":
            chapter.text = f"Ch {value}"

    handle.listeners.append(follow)
    return panel


def build_aircon_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    room = Label(f"Room {float(handle.get('room_temp', 0.0)):.1f}C")
    room.widget_id = _wid(handle, "room")
    top.add(room)
    top.add(Spacer())
    panel.add(top)

    temp_row = Row(padding=0)
    temp_row.add(Label("Set"))
    target = Slider(16, 30, value=int(handle.get("target_temp", 25)))
    target.widget_id = _wid(handle, "target")
    target.layout_stretch = 1
    target.on_activate = lambda w: handle.command("temp.set",
                                                  {"temp": w.value})
    temp_row.add(target)
    target_label = Label(f"{handle.get('target_temp', 25)}C")
    target_label.widget_id = _wid(handle, "target-label")
    temp_row.add(target_label)
    panel.add(temp_row)

    modes = ListBox(["cool", "heat", "dry", "fan"])
    modes.widget_id = _wid(handle, "mode")
    modes.on_activate = lambda w: handle.command("mode.set",
                                                 {"mode": w.selected_item})
    panel.add(modes)

    def follow(key: str, value: object) -> None:
        if key == "room_temp":
            room.text = f"Room {float(value):.1f}C"  # type: ignore[arg-type]
        elif key == "target_temp":
            target.value = int(value)  # type: ignore[arg-type]
            target_label.text = f"{value}C"
        elif key == "mode":
            items = modes.items
            if value in items:
                modes.selected = items.index(value)
                modes.invalidate()

    handle.listeners.append(follow)
    return panel


def build_light_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    panel.add(_power_toggle(handle))
    dim_row = Row(padding=0)
    dim_row.add(Label("Dim"))
    brightness = Slider(0, 100, value=int(handle.get("brightness", 100)),
                        step=10)
    brightness.widget_id = _wid(handle, "brightness")
    brightness.layout_stretch = 1
    brightness.on_activate = lambda w: handle.command(
        "brightness.set", {"brightness": w.value})
    dim_row.add(brightness)
    panel.add(dim_row)

    def follow(key: str, value: object) -> None:
        if key == "brightness":
            brightness.value = int(value)  # type: ignore[arg-type]

    handle.listeners.append(follow)
    return panel


def build_microwave_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    status = Label("READY")
    status.widget_id = _wid(handle, "status")
    panel.add(status)

    pending = {"seconds": 0}

    time_row = Row(padding=0)
    display = Label("0:00")
    display.widget_id = _wid(handle, "time")

    def refresh_display() -> None:
        if handle.get("running"):
            seconds = int(handle.get("remaining_s", 0))  # type: ignore[arg-type]
        else:
            seconds = pending["seconds"]
        display.text = f"{seconds // 60}:{seconds % 60:02d}"

    def add_time(amount: int) -> None:
        pending["seconds"] = min(3600, pending["seconds"] + amount)
        refresh_display()

    for caption, amount in (("+10s", 10), ("+1m", 60), ("+10m", 600)):
        button = Button(caption,
                        on_click=lambda w, a=amount: add_time(a))
        button.widget_id = _wid(handle, f"add{amount}")
        time_row.add(button)
    clear = Button("Clear")
    clear.widget_id = _wid(handle, "clear")

    def do_clear(widget: Widget) -> None:
        pending["seconds"] = 0
        refresh_display()

    clear.on_activate = do_clear
    time_row.add(clear)
    time_row.add(display)
    panel.add(time_row)

    run_row = Row(padding=0)
    start = Button("Start")
    start.widget_id = _wid(handle, "start")

    def do_start(widget: Widget) -> None:
        if pending["seconds"] > 0:
            handle.command("timer.start", {"seconds": pending["seconds"]})
            pending["seconds"] = 0

    start.on_activate = do_start
    run_row.add(start)
    stop = Button("Stop", on_click=lambda w: handle.command("timer.stop"))
    stop.widget_id = _wid(handle, "stop")
    run_row.add(stop)
    door = Button("Door")
    door.widget_id = _wid(handle, "door")
    door.on_activate = lambda w: handle.command(
        "door.close" if handle.get("door_open") else "door.open")
    run_row.add(door)
    panel.add(run_row)

    power_row = Row(padding=0)
    power_row.add(Label("Pwr"))
    level = Slider(1, 10, value=int(handle.get("power_level", 7)))
    level.widget_id = _wid(handle, "level")
    level.layout_stretch = 1
    level.on_activate = lambda w: handle.command("power_level.set",
                                                 {"level": w.value})
    power_row.add(level)
    panel.add(power_row)

    def follow(key: str, value: object) -> None:
        if key == "running":
            status.text = "COOKING" if value else "READY"
            refresh_display()
        elif key == "remaining_s":
            refresh_display()
        elif key == "door_open":
            status.text = "DOOR OPEN" if value else (
                "COOKING" if handle.get("running") else "READY")
        elif key == "power_level":
            level.value = int(value)  # type: ignore[arg-type]

    handle.listeners.append(follow)
    return panel


def build_generic_panel(handle: FcmHandle) -> Panel:
    """Fallback: state dump plus the FCM's argument-less commands."""
    panel = Panel(title=f"{handle.device_name} ({handle.fcm_type})")
    state = Label(", ".join(f"{k}={v}" for k, v in
                            sorted(handle.state.items())) or "(no state)")
    state.widget_id = _wid(handle, "state")
    panel.add(state)

    def follow(key: str, value: object) -> None:
        state.text = ", ".join(f"{k}={v}" for k, v in
                               sorted(handle.state.items()))

    handle.listeners.append(follow)
    return panel


PANEL_BUILDERS: dict[str, PanelBuilder] = {
    "tuner": build_tuner_panel,
    "display": build_display_panel,
    "vcr": build_vcr_panel,
    "amplifier": build_amplifier_panel,
    "av_disc": build_av_disc_panel,
    "aircon": build_aircon_panel,
    "light": build_light_panel,
    "microwave": build_microwave_panel,
}


def build_fcm_panel(handle: FcmHandle) -> Panel:
    """Panel for any FCM; unknown types get the generic fallback."""
    builder = PANEL_BUILDERS.get(handle.fcm_type, build_generic_panel)
    return builder(handle)

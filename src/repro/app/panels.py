"""Per-FCM control panel builders.

Each builder takes an :class:`~repro.app.handles.FcmHandle` and returns a
toolkit :class:`~repro.toolkit.Panel` whose widgets

* send FCM commands when the user operates them, and
* follow the FCM's state via the handle's listeners (so a channel changed
  from *any* device updates every panel showing it).

:func:`build_capability_panel` generates such a panel from the FCM's
capability descriptor alone — the default path.  The hand-written
per-type builders below it remain as the ``dynamic_panels=False`` legacy
path and as the reference the parity tests compare against.

Widget ids follow ``<guid8>.<fcm_type>.<name>`` so tests and demos can
locate live widgets deterministically (``<guid8>`` grows when two device
GUIDs collide on their first 8 digits — see
:func:`repro.util.ids.guid_prefixes`).  Every builder registers its state
listener for teardown, so replacing a UI root detaches the old panel's
listeners instead of leaking them on the handle.
"""

from __future__ import annotations

from typing import Callable

from repro.app.handles import FcmHandle
from repro.havi.capabilities import MAIN_COMPONENT, Capability
from repro.toolkit import (
    Button,
    Column,
    Label,
    ListBox,
    Panel,
    ProgressBar,
    Row,
    Slider,
    Spacer,
    TextField,
    ToggleButton,
)
from repro.toolkit.widget import Widget

PanelBuilder = Callable[[FcmHandle], Panel]

#: Kinds whose widgets flow together into shared rows; range/choice/number
#: always get a row of their own (sliders and lists want the width).
_FLOW_KINDS = ("switch", "text", "button", "progress")
_MAX_ROW_ITEMS = 4


def _wid(handle: FcmHandle, name: str) -> str:
    return f"{handle.guid_prefix}.{handle.fcm_type}.{name}"


def _act(handle: FcmHandle, opcode: str, payload: dict | None = None):
    """Every panel-widget actuation enters the command spine tagged with
    its origin, so the home journal can tell a GUI click from a voice
    utterance or an API call."""
    return handle.command(opcode, payload, origin="widget")


def _follow(widget: Widget, handle: FcmHandle, listener) -> None:
    """Subscribe a state listener and detach it with the widget."""
    handle.subscribe(listener)
    widget.on_teardown(lambda: handle.unsubscribe(listener))


def _power_toggle(handle: FcmHandle) -> ToggleButton:
    toggle = ToggleButton("Power", value=bool(handle.get("power", False)))
    toggle.widget_id = _wid(handle, "power")
    toggle.on_activate = lambda w: _act(handle, "power.set",
                                                  {"on": w.value})

    def follow(key: str, value: object) -> None:
        if key == "power":
            toggle.value = bool(value)

    _follow(toggle, handle, follow)
    return toggle


# -- descriptor-driven panels -------------------------------------------------


def _format_text(capability: Capability, value: object) -> str:
    if value is None:
        value = ""
    if capability.fmt:
        try:
            return capability.fmt.format(value=value)
        except (ValueError, TypeError):
            pass
    return str(value)


def _capability_widgets(handle: FcmHandle, capability: Capability,
                        followers: dict) -> tuple[list[Widget], bool]:
    """Widgets for one capability: ``(widgets, wants_own_row)``.

    Widgets are wired both ways — operating them sends the capability's
    command, and state changes on ``capability.attribute`` update them via
    ``followers`` (attribute -> update callbacks).
    """
    wid = _wid(handle, capability.name)

    def watch(update) -> None:
        if capability.attribute:
            followers.setdefault(capability.attribute, []).append(update)

    if capability.kind == "switch":
        toggle = ToggleButton(
            capability.display_label,
            value=bool(handle.get(capability.attribute, False)))
        toggle.widget_id = wid
        toggle.on_activate = lambda w: _act(handle, 
            capability.command, {capability.arg_name or "on": w.value})
        watch(lambda value: setattr(toggle, "value", bool(value)))
        return [toggle], False

    if capability.kind == "text":
        label = Label(_format_text(capability,
                                   handle.get(capability.attribute)))
        label.widget_id = wid
        watch(lambda value: setattr(
            label, "text", _format_text(capability, value)))
        return [label], False

    if capability.kind == "button":
        button = Button(
            capability.display_label,
            on_click=lambda w: _act(handle, capability.command,
                                              dict(capability.args)))
        button.widget_id = wid
        return [button], False

    if capability.kind == "progress":
        bar = ProgressBar(int(capability.minimum), int(capability.maximum))
        bar.value = int(float(handle.get(capability.attribute,
                                         capability.minimum) or 0))
        bar.widget_id = wid
        watch(lambda value: setattr(bar, "value", int(float(value or 0))))
        return [bar], False

    if capability.kind == "range":
        widgets: list[Widget] = []
        if capability.label:
            widgets.append(Label(capability.label))
        initial = int(float(handle.get(capability.attribute,
                                       capability.minimum)
                            or capability.minimum))
        slider = Slider(int(capability.minimum), int(capability.maximum),
                        value=initial, step=max(1, int(capability.step)))
        slider.widget_id = wid
        slider.layout_stretch = 1
        slider.on_activate = lambda w: _act(handle, 
            capability.command, {capability.arg_name: w.value})
        widgets.append(slider)
        if capability.unit:
            value_label = Label(f"{initial}{capability.unit}")
            value_label.widget_id = _wid(handle,
                                         f"{capability.name}-label")
            widgets.append(value_label)

            def update_range(value: object,
                             label: Label = value_label) -> None:
                slider.value = int(float(value or 0))
                label.text = f"{value}{capability.unit}"

            watch(update_range)
        else:
            watch(lambda value: setattr(slider, "value",
                                        int(float(value or 0))))
        return widgets, True

    if capability.kind == "choice":
        listbox = ListBox(list(capability.choices))
        listbox.widget_id = wid
        current = handle.get(capability.attribute)
        if current in capability.choices:
            listbox.selected = list(capability.choices).index(current)
        listbox.on_activate = lambda w: _act(handle, 
            capability.command, {capability.arg_name: w.selected_item})

        def update_choice(value: object) -> None:
            items = listbox.items
            if value in items:
                listbox.selected = items.index(value)
                listbox.invalidate()

        watch(update_choice)
        return [listbox], True

    if capability.kind == "number":
        widgets = []
        if capability.label:
            widgets.append(Label(capability.label))
        entry = TextField(max_length=max(len(str(capability.minimum)),
                                         len(str(capability.maximum))))
        entry.widget_id = wid

        def submit(widget: Widget) -> None:
            try:
                value = int(widget.text.strip())
            except ValueError:
                widget.clear()
                return
            _act(handle, capability.command,
                           {capability.arg_name: value})
            widget.clear()

        entry.on_activate = submit
        widgets.append(entry)
        return widgets, True

    # unmapped kind: generic send-command escape hatch so future
    # capability kinds degrade gracefully instead of raising
    if capability.command:
        button = Button(
            capability.display_label,
            on_click=lambda w: _act(handle, capability.command,
                                              dict(capability.args)))
        button.widget_id = wid
        return [button], False
    label = Label(_format_text(capability,
                               handle.get(capability.attribute)))
    label.widget_id = wid
    watch(lambda value: setattr(
        label, "text", _format_text(capability, value)))
    return [label], False


def _fill_section(container: Widget, handle: FcmHandle, capabilities,
                  followers: dict) -> None:
    """Lay capabilities out: flow kinds share rows, others get their own.

    Rows are populated detached and attached last — adding to an
    attached row invalidates the whole ancestor chain per widget, which
    the hand-written builders never paid.
    """
    rows: list[Row] = []
    row: Row | None = None
    for capability in capabilities:
        widgets, own_row = _capability_widgets(handle, capability,
                                               followers)
        if own_row or capability.kind not in _FLOW_KINDS:
            dedicated = Row(padding=0)
            for widget in widgets:
                dedicated.add(widget)
            rows.append(dedicated)
            row = None
            continue
        if row is None or len(row.children) >= _MAX_ROW_ITEMS:
            row = Row(padding=0)
            rows.append(row)
        for widget in widgets:
            row.add(widget)
    for row in rows:
        container.add(row)


def build_capability_panel(handle: FcmHandle) -> Panel:
    """Generate a control panel purely from the FCM's descriptor.

    Same widget ids and same FCM commands as the hand-written builder for
    that type (the parity tests assert both), but zero per-type code:
    appliances whose FCMs declare capabilities need no panel builder at
    all.  Multi-component devices get one labelled section per component.
    """
    descriptor = handle.descriptor
    if descriptor is None or not len(descriptor):
        return build_generic_panel(handle)
    panel = Panel(title=f"{handle.device_name} {handle.fcm_type}")
    followers: dict[str, list] = {}
    components = descriptor.components()
    for component in components:
        if components == [MAIN_COMPONENT]:
            section: Widget = panel
        else:
            section = Panel(title=component.capitalize(), padding=1)
            section.widget_id = _wid(handle, f"component.{component}")
        _fill_section(section, handle,
                      descriptor.for_component(component), followers)
        if section is not panel:
            panel.add(section)

    def follow(key: str, value: object) -> None:
        for update in followers.get(key, ()):
            update(value)

    _follow(panel, handle, follow)
    return panel


# -- hand-written legacy builders ---------------------------------------------


def build_tuner_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name} tuner")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    station = Label(f"CH {handle.get('channel', 1)} "
                    f"{handle.get('station', '')}")
    station.widget_id = _wid(handle, "station")
    top.add(station)
    top.add(Spacer())
    panel.add(top)

    channels = Row(padding=0)
    down = Button("CH-", on_click=lambda w: _act(handle, "channel.down"))
    down.widget_id = _wid(handle, "ch-down")
    up = Button("CH+", on_click=lambda w: _act(handle, "channel.up"))
    up.widget_id = _wid(handle, "ch-up")
    channels.add(down)
    channels.add(up)
    entry = TextField(max_length=2)
    entry.widget_id = _wid(handle, "ch-entry")

    def submit_channel(widget: Widget) -> None:
        if widget.text.isdigit():
            _act(handle, "channel.set", {"channel": int(widget.text)})
        widget.clear()

    entry.on_activate = submit_channel
    channels.add(entry)
    channels.add(Spacer())
    panel.add(channels)

    volume_row = Row(padding=0)
    volume_row.add(Label("Vol"))
    volume = Slider(0, 100, value=int(handle.get("volume", 0)), step=5)
    volume.widget_id = _wid(handle, "volume")
    volume.layout_stretch = 1
    volume.on_activate = lambda w: _act(handle, "volume.set",
                                                  {"volume": w.value})
    volume_row.add(volume)
    mute = ToggleButton("Mute", value=bool(handle.get("mute", False)))
    mute.widget_id = _wid(handle, "mute")
    mute.on_activate = lambda w: _act(handle, "mute.set", {"on": w.value})
    volume_row.add(mute)
    panel.add(volume_row)

    def follow(key: str, value: object) -> None:
        if key in ("channel", "station"):
            station.text = (f"CH {handle.get('channel', 1)} "
                            f"{handle.get('station', '')}")
        elif key == "volume":
            volume.value = int(value)  # type: ignore[arg-type]
        elif key == "mute":
            mute.value = bool(value)

    _follow(panel, handle, follow)
    return panel


def build_display_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name} screen")
    sources = ListBox(["tuner", "vcr", "dvd"])
    sources.widget_id = _wid(handle, "source")
    sources.on_activate = lambda w: _act(handle, 
        "source.set", {"source": w.selected_item})
    panel.add(sources)

    bright_row = Row(padding=0)
    bright_row.add(Label("Bright"))
    brightness = Slider(0, 100, value=int(handle.get("brightness", 50)),
                        step=10)
    brightness.widget_id = _wid(handle, "brightness")
    brightness.layout_stretch = 1
    brightness.on_activate = lambda w: _act(handle, 
        "brightness.set", {"brightness": w.value})
    bright_row.add(brightness)
    panel.add(bright_row)

    def follow(key: str, value: object) -> None:
        if key == "brightness":
            brightness.value = int(value)  # type: ignore[arg-type]
        elif key == "source":
            items = sources.items
            if value in items:
                sources.selected = items.index(value)
                sources.invalidate()

    _follow(panel, handle, follow)
    return panel


def build_vcr_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name} deck")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    status = Label(str(handle.get("transport", "stop")).upper())
    status.widget_id = _wid(handle, "transport")
    top.add(status)
    counter = Label(f"{float(handle.get('counter', 0.0)):07.1f}")
    counter.widget_id = _wid(handle, "counter")
    top.add(counter)
    top.add(Spacer())
    panel.add(top)

    transport = Row(padding=0)
    for caption, opcode in (("<<", "transport.rew"), (">", "transport.play"),
                            ("||", "transport.pause"), ("[]",
                                                        "transport.stop"),
                            (">>", "transport.ff"), ("REC",
                                                     "transport.record")):
        button = Button(caption,
                        on_click=lambda w, op=opcode: _act(handle, op))
        button.widget_id = _wid(handle, opcode.rsplit(".", 1)[1])
        transport.add(button)
    panel.add(transport)

    eject = Button("Eject", on_click=lambda w: _act(handle, "tape.eject"))
    eject.widget_id = _wid(handle, "eject")
    panel.add(eject)

    def follow(key: str, value: object) -> None:
        if key == "transport":
            status.text = str(value).upper()
        elif key == "counter":
            counter.text = f"{float(value):07.1f}"  # type: ignore[arg-type]
        elif key == "tape_loaded":
            eject.text = "Eject" if value else "No tape"

    _follow(panel, handle, follow)
    return panel


def build_amplifier_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    mute = ToggleButton("Mute", value=bool(handle.get("mute", False)))
    mute.widget_id = _wid(handle, "mute")
    mute.on_activate = lambda w: _act(handle, "mute.set", {"on": w.value})
    top.add(mute)
    top.add(Spacer())
    panel.add(top)

    volume_row = Row(padding=0)
    volume_row.add(Label("Vol"))
    volume = Slider(0, 100, value=int(handle.get("volume", 0)), step=5)
    volume.widget_id = _wid(handle, "volume")
    volume.layout_stretch = 1
    volume.on_activate = lambda w: _act(handle, "volume.set",
                                                  {"volume": w.value})
    volume_row.add(volume)
    panel.add(volume_row)

    sources = ListBox(["cd", "tuner", "aux", "tv"])
    sources.widget_id = _wid(handle, "source")
    sources.on_activate = lambda w: _act(handle, 
        "source.set", {"source": w.selected_item})
    panel.add(sources)

    def follow(key: str, value: object) -> None:
        if key == "volume":
            volume.value = int(value)  # type: ignore[arg-type]
        elif key == "mute":
            mute.value = bool(value)
        elif key == "source":
            items = sources.items
            if value in items:
                sources.selected = items.index(value)
                sources.invalidate()

    _follow(panel, handle, follow)
    return panel


def build_av_disc_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    status = Label(str(handle.get("playback", "stop")).upper())
    status.widget_id = _wid(handle, "playback")
    top.add(status)
    chapter = Label(f"Ch {handle.get('chapter', 1)}")
    chapter.widget_id = _wid(handle, "chapter")
    top.add(chapter)
    top.add(Spacer())
    panel.add(top)

    transport = Row(padding=0)
    for caption, opcode in (("|<", "chapter.prev"), (">", "playback.play"),
                            ("||", "playback.pause"),
                            ("[]", "playback.stop"), (">|", "chapter.next")):
        button = Button(caption,
                        on_click=lambda w, op=opcode: _act(handle, op))
        button.widget_id = _wid(handle, opcode.replace(".", "-"))
        transport.add(button)
    panel.add(transport)

    tray = Button("Open/Close")
    tray.widget_id = _wid(handle, "tray")
    tray.on_activate = lambda w: _act(handle, 
        "tray.close" if handle.get("tray_open") else "tray.open")
    panel.add(tray)

    def follow(key: str, value: object) -> None:
        if key == "playback":
            status.text = str(value).upper()
        elif key == "chapter":
            chapter.text = f"Ch {value}"

    _follow(panel, handle, follow)
    return panel


def build_aircon_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    top = Row(padding=0)
    top.add(_power_toggle(handle))
    room = Label(f"Room {float(handle.get('room_temp', 0.0)):.1f}C")
    room.widget_id = _wid(handle, "room")
    top.add(room)
    top.add(Spacer())
    panel.add(top)

    temp_row = Row(padding=0)
    temp_row.add(Label("Set"))
    target = Slider(16, 30, value=int(handle.get("target_temp", 25)))
    target.widget_id = _wid(handle, "target")
    target.layout_stretch = 1
    target.on_activate = lambda w: _act(handle, "temp.set",
                                                  {"temp": w.value})
    temp_row.add(target)
    target_label = Label(f"{handle.get('target_temp', 25)}C")
    target_label.widget_id = _wid(handle, "target-label")
    temp_row.add(target_label)
    panel.add(temp_row)

    modes = ListBox(["cool", "heat", "dry", "fan"])
    modes.widget_id = _wid(handle, "mode")
    modes.on_activate = lambda w: _act(handle, "mode.set",
                                                 {"mode": w.selected_item})
    panel.add(modes)

    def follow(key: str, value: object) -> None:
        if key == "room_temp":
            room.text = f"Room {float(value):.1f}C"  # type: ignore[arg-type]
        elif key == "target_temp":
            target.value = int(value)  # type: ignore[arg-type]
            target_label.text = f"{value}C"
        elif key == "mode":
            items = modes.items
            if value in items:
                modes.selected = items.index(value)
                modes.invalidate()

    _follow(panel, handle, follow)
    return panel


def build_light_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    panel.add(_power_toggle(handle))
    dim_row = Row(padding=0)
    dim_row.add(Label("Dim"))
    brightness = Slider(0, 100, value=int(handle.get("brightness", 100)),
                        step=10)
    brightness.widget_id = _wid(handle, "brightness")
    brightness.layout_stretch = 1
    brightness.on_activate = lambda w: _act(handle, 
        "brightness.set", {"brightness": w.value})
    dim_row.add(brightness)
    panel.add(dim_row)

    def follow(key: str, value: object) -> None:
        if key == "brightness":
            brightness.value = int(value)  # type: ignore[arg-type]

    _follow(panel, handle, follow)
    return panel


def build_microwave_panel(handle: FcmHandle) -> Panel:
    panel = Panel(title=f"{handle.device_name}")
    status = Label("READY")
    status.widget_id = _wid(handle, "status")
    panel.add(status)

    pending = {"seconds": 0}

    time_row = Row(padding=0)
    display = Label("0:00")
    display.widget_id = _wid(handle, "time")

    def refresh_display() -> None:
        if handle.get("running"):
            seconds = int(handle.get("remaining_s", 0))  # type: ignore[arg-type]
        else:
            seconds = pending["seconds"]
        display.text = f"{seconds // 60}:{seconds % 60:02d}"

    def add_time(amount: int) -> None:
        pending["seconds"] = min(3600, pending["seconds"] + amount)
        refresh_display()

    for caption, amount in (("+10s", 10), ("+1m", 60), ("+10m", 600)):
        button = Button(caption,
                        on_click=lambda w, a=amount: add_time(a))
        button.widget_id = _wid(handle, f"add{amount}")
        time_row.add(button)
    clear = Button("Clear")
    clear.widget_id = _wid(handle, "clear")

    def do_clear(widget: Widget) -> None:
        pending["seconds"] = 0
        refresh_display()

    clear.on_activate = do_clear
    time_row.add(clear)
    time_row.add(display)
    panel.add(time_row)

    run_row = Row(padding=0)
    start = Button("Start")
    start.widget_id = _wid(handle, "start")

    def do_start(widget: Widget) -> None:
        if pending["seconds"] > 0:
            _act(handle, "timer.start", {"seconds": pending["seconds"]})
            pending["seconds"] = 0

    start.on_activate = do_start
    run_row.add(start)
    stop = Button("Stop", on_click=lambda w: _act(handle, "timer.stop"))
    stop.widget_id = _wid(handle, "stop")
    run_row.add(stop)
    door = Button("Door")
    door.widget_id = _wid(handle, "door")
    door.on_activate = lambda w: _act(handle, 
        "door.close" if handle.get("door_open") else "door.open")
    run_row.add(door)
    panel.add(run_row)

    power_row = Row(padding=0)
    power_row.add(Label("Pwr"))
    level = Slider(1, 10, value=int(handle.get("power_level", 7)))
    level.widget_id = _wid(handle, "level")
    level.layout_stretch = 1
    level.on_activate = lambda w: _act(handle, "power_level.set",
                                                 {"level": w.value})
    power_row.add(level)
    panel.add(power_row)

    def follow(key: str, value: object) -> None:
        if key == "running":
            status.text = "COOKING" if value else "READY"
            refresh_display()
        elif key == "remaining_s":
            refresh_display()
        elif key == "door_open":
            status.text = "DOOR OPEN" if value else (
                "COOKING" if handle.get("running") else "READY")
        elif key == "power_level":
            level.value = int(value)  # type: ignore[arg-type]

    _follow(panel, handle, follow)
    return panel


def build_generic_panel(handle: FcmHandle) -> Panel:
    """Fallback: an "unsupported" banner plus a live state dump.

    Reached for FCM types with neither a capability descriptor nor a
    hand-written builder — the panel says so instead of raising, so one
    unknown device can never take the whole composed UI down.
    """
    panel = Panel(title=f"{handle.device_name} ({handle.fcm_type})")
    banner = Label(f"Unsupported appliance type: {handle.fcm_type}",
                   centered=True)
    banner.widget_id = _wid(handle, "unsupported")
    panel.add(banner)
    state = Label(", ".join(f"{k}={v}" for k, v in
                            sorted(handle.state.items())) or "(no state)")
    state.widget_id = _wid(handle, "state")
    panel.add(state)

    def follow(key: str, value: object) -> None:
        state.text = ", ".join(f"{k}={v}" for k, v in
                               sorted(handle.state.items()))

    _follow(panel, handle, follow)
    return panel


#: The legacy hand-written dispatch, kept for ``dynamic_panels=False``.
PANEL_BUILDERS: dict[str, PanelBuilder] = {
    "tuner": build_tuner_panel,
    "display": build_display_panel,
    "vcr": build_vcr_panel,
    "amplifier": build_amplifier_panel,
    "av_disc": build_av_disc_panel,
    "aircon": build_aircon_panel,
    "light": build_light_panel,
    "microwave": build_microwave_panel,
}


def build_fcm_panel(handle: FcmHandle, dynamic: bool = True) -> Panel:
    """Panel for any FCM.

    Descriptor present (and ``dynamic`` on) -> generated panel; known
    type -> legacy hand-written builder; anything else -> generic
    fallback with an "unsupported" banner.
    """
    if dynamic and handle.descriptor is not None and len(handle.descriptor):
        return build_capability_panel(handle)
    builder = PANEL_BUILDERS.get(handle.fcm_type)
    if builder is not None:
        return builder(handle)
    return build_generic_panel(handle)

"""The display server: window stacking, composition, input routing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.graphics.bitmap import Bitmap, Color
from repro.graphics.region import Rect, Region
from repro.toolkit.events import Pointer, PointerKind
from repro.toolkit.window import UIWindow
from repro.util.errors import ToolkitError


@dataclass
class ManagedWindow:
    """A mapped window: the UI window plus its screen position."""

    ui: UIWindow
    x: int
    y: int
    visible: bool = True

    @property
    def rect(self) -> Rect:
        return Rect(self.x, self.y, self.ui.bitmap.width,
                    self.ui.bitmap.height)


class DisplayServer:
    """Composites windows into a framebuffer; injects universal input.

    Key properties the UniInt server relies on:

    * :attr:`framebuffer` always holds the current composited screen,
    * :meth:`composite` returns the damage region since the last call,
    * :meth:`inject_key` / :meth:`inject_pointer` accept exactly the
      universal input event vocabulary (keysym+down, position+button mask).
    """

    def __init__(self, width: int, height: int,
                 wallpaper: Color = (0, 24, 64),
                 damage_cap: int = 32) -> None:
        if width <= 0 or height <= 0:
            raise ToolkitError(f"display size must be positive: "
                               f"{width}x{height}")
        if damage_cap < 1:
            raise ToolkitError(f"damage cap must be >= 1: {damage_cap}")
        self.wallpaper = wallpaper
        #: Fragmentation cap for the coalesced damage a composite reports.
        self.damage_cap = damage_cap
        #: Monotonic content version: bumps whenever the framebuffer pixels
        #: change (composite with damage, resize).  Consumers caching
        #: derived data (the UniInt server's pack/encode caches) compare
        #: against it to invalidate.
        self.frame_version = 0
        self.framebuffer = Bitmap(width, height, fill=wallpaper)
        self._windows: list[ManagedWindow] = []  # bottom -> top
        self._damage = Region([self.framebuffer.bounds])
        self._pointer_buttons = 0
        self._pointer_window: Optional[ManagedWindow] = None
        #: Fired after damage is produced; the UniInt server hooks this to
        #: schedule update pushes.
        self.on_damage: Optional[Callable[[], None]] = None

    # -- window management ---------------------------------------------------

    @property
    def windows(self) -> list[ManagedWindow]:
        return list(self._windows)

    def map_window(self, window: UIWindow, x: int = 0,
                   y: int = 0) -> ManagedWindow:
        """Add a window at (x, y); it becomes the top (focused) window."""
        managed = ManagedWindow(window, x, y)
        self._windows.append(managed)
        window.on_damage = self._window_damaged
        self._note_damage(managed.rect)
        return managed

    def _window_damaged(self) -> None:
        if self.on_damage is not None:
            self.on_damage()

    def map_fullscreen(self, window: UIWindow) -> ManagedWindow:
        """Map a window resized to cover the whole screen."""
        if window.bitmap.size != self.framebuffer.size:
            window.resize(self.framebuffer.width, self.framebuffer.height)
        return self.map_window(window, 0, 0)

    def unmap_window(self, managed: ManagedWindow) -> None:
        if managed not in self._windows:
            raise ToolkitError("window is not mapped")
        self._windows.remove(managed)
        managed.ui.on_damage = None
        if self._pointer_window is managed:
            self._pointer_window = None
        self._note_damage(managed.rect)

    def raise_window(self, managed: ManagedWindow) -> None:
        if managed not in self._windows:
            raise ToolkitError("window is not mapped")
        self._windows.remove(managed)
        self._windows.append(managed)
        self._note_damage(managed.rect)

    def move_window(self, managed: ManagedWindow, x: int, y: int) -> None:
        if managed not in self._windows:
            raise ToolkitError("window is not mapped")
        old = managed.rect
        managed.x = x
        managed.y = y
        self._note_damage(old)
        self._note_damage(managed.rect)

    @property
    def top_window(self) -> Optional[ManagedWindow]:
        for managed in reversed(self._windows):
            if managed.visible:
                return managed
        return None

    # -- damage & composition ---------------------------------------------------

    def _note_damage(self, rect: Rect) -> None:
        clipped = rect.intersect(self.framebuffer.bounds)
        if clipped.is_empty:
            return
        self._damage.add(clipped)
        if self.on_damage is not None:
            self.on_damage()

    def has_pending_damage(self) -> bool:
        if not self._damage.is_empty:
            return True
        return any(not m.ui.damage.is_empty for m in self._windows
                   if m.visible)

    def composite(self) -> Region:
        """Render dirty windows, recompose, return the changed screen region.

        Accumulated damage is coalesced first (adjacent fragments fused,
        at most :attr:`damage_cap` rects), and only those rects are
        recomposed — two small damages in opposite corners no longer force
        a full-screen recompose through their joint bounding box.
        """
        # collect per-window damage (in screen coordinates)
        for managed in self._windows:
            if not managed.visible:
                continue
            window_damage = managed.ui.render()
            for rect in window_damage:
                self._note_damage(rect.translate(managed.x, managed.y))
        if self._damage.is_empty:
            return Region()
        damage, self._damage = self._damage, Region()
        coalesced = damage.coalesced(self.damage_cap)
        for clip in coalesced:
            self._recompose(clip)
        self.frame_version += 1
        return Region.from_disjoint(coalesced)

    def _recompose(self, clip: Rect) -> None:
        """Rebuild the framebuffer content inside one damaged rect."""
        self.framebuffer.fill_rect(clip, self.wallpaper)
        for managed in self._windows:
            if not managed.visible:
                continue
            overlap = managed.rect.intersect(clip)
            if overlap.is_empty:
                continue
            # zero-copy: blit straight from a window-bitmap view (overlap
            # is already clipped to both the window and the framebuffer)
            source = managed.ui.bitmap.view(
                overlap.translate(-managed.x, -managed.y))
            self.framebuffer.pixels[overlap.y:overlap.y2,
                                    overlap.x:overlap.x2] = source

    def resize(self, width: int, height: int) -> None:
        self.framebuffer = Bitmap(width, height, fill=self.wallpaper)
        self._damage = Region([self.framebuffer.bounds])
        self.frame_version += 1
        if self.on_damage is not None:
            self.on_damage()

    # -- input injection -----------------------------------------------------------

    def inject_key(self, keysym: int, down: bool) -> bool:
        """Route a universal key event to the top window."""
        top = self.top_window
        if top is None:
            return False
        return top.ui.dispatch_key_event(keysym, down)

    def inject_pointer(self, x: int, y: int, buttons: int) -> bool:
        """Route a universal pointer event (absolute position + mask).

        Button transitions are synthesised into DOWN/UP events; while any
        button is held the original window keeps receiving events (grab).
        """
        pressed = buttons & ~self._pointer_buttons
        released = self._pointer_buttons & ~buttons
        self._pointer_buttons = buttons

        target = self._pointer_window
        if target is None:
            target = self._window_at(x, y)
        if target is None:
            return False

        consumed = False
        local_x, local_y = x - target.x, y - target.y
        if pressed:
            self._pointer_window = target
            consumed |= target.ui.dispatch_pointer(
                Pointer(PointerKind.DOWN, local_x, local_y, buttons))
        elif released:
            consumed |= target.ui.dispatch_pointer(
                Pointer(PointerKind.UP, local_x, local_y, buttons))
            if buttons == 0:
                self._pointer_window = None
        else:
            consumed |= target.ui.dispatch_pointer(
                Pointer(PointerKind.MOVE, local_x, local_y, buttons))
        return consumed

    def _window_at(self, x: int, y: int) -> Optional[ManagedWindow]:
        for managed in reversed(self._windows):
            if managed.visible and managed.rect.contains_point(x, y):
                return managed
        return None

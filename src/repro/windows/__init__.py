"""Minimal window system — the reproduction's X server.

The UniInt server (paper §2.2) attaches to "a window system": it ships the
window system's framebuffer out and injects key/pointer events in, with the
applications none the wiser.  :class:`DisplayServer` is that window system:
it hosts :class:`~repro.toolkit.UIWindow` instances, composites them into
one screen framebuffer with damage tracking, and routes injected universal
input events to the right window.
"""

from repro.windows.server import DisplayServer, ManagedWindow

__all__ = ["DisplayServer", "ManagedWindow"]

"""The Home facade: one call assembles the entire simulated house.

A :class:`Home` contains the full stack of the paper's prototype:

* a :class:`~repro.havi.HomeNetwork` (HAVi middleware + hot-pluggable bus),
* one **UI surface per resident** — each a :class:`HomeView` bundling a
  :class:`~repro.windows.DisplayServer`, a
  :class:`~repro.toolkit.UIWindow` and that resident's own
  :class:`~repro.app.HomeApplianceApplication` instance (one bus/discovery
  event fan-out feeds N independent views),
* a :class:`~repro.server.UniIntServer` multiplexing all of those surfaces,
* one :class:`HomeUser` per resident — each with their own
  :class:`~repro.proxy.UniIntProxy`, server session bound to their view,
  :class:`~repro.context.ContextManager` and preference store,
* a shared :class:`~repro.context.DeviceArbiter` keeping contested devices
  owned by at most one user at a time.

A freshly built home has a single default user (``"resident"``), and all
the classic single-user attributes (``home.proxy``, ``home.session``,
``home.display``, ``home.window``, ``home.app``, ...) resolve to that
user, so existing code and the paper's original scenarios run unchanged.
``add_user`` turns the same house into the paper's headline scenario:
several people controlling *different* appliances at once — one resident
tabs their view to the TV while another drives the microwave — each
through whichever devices suit their current situation, with *follow-me*
migration as they move between rooms.  ``add_user(..., view_of=...)``
instead seats a resident in front of an existing view (the family around
the living-room panel), preserving the shared-encode broadcast win for
same-surface sessions.

Examples and experiments build on this facade; the pieces remain
individually constructible for tests.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.app.application import HomeApplianceApplication
from repro.app.commands import Command, CommandLog
from repro.appliances.base import Appliance
from repro.context.arbiter import DeviceArbiter
from repro.context.manager import ContextManager, SwitchRecord
from repro.context.model import UserSituation
from repro.context.policy import SelectionPolicy
from repro.context.preferences import PreferenceStore
from repro.devices.base import InteractionDevice
from repro.graphics.pixelformat import RGB888, PixelFormat
from repro.havi.manager import HomeNetwork
from repro.net import TRANSPORT_KINDS, make_transport_pair
from repro.net.link import ETHERNET_100
from repro.net.reactor import (
    DEFAULT_EVENT_BUDGET,
    Reactor,
    ReactorMember,
    connect_tcp,
)
from repro.proxy.proxy import UniIntProxy
from repro.proxy.session import ProxySession
from repro.server.uniint_server import (
    ServerSession,
    ServerSurface,
    UniIntServer,
)
from repro.toolkit.window import UIWindow
from repro.util.errors import HaviError, ProxyError, TransportError
from repro.util.scheduler import Scheduler
from repro.windows.server import DisplayServer

#: The user every Home starts with (the classic single-user attributes
#: — ``home.proxy``, ``home.context``, ... — resolve to this user).
DEFAULT_USER = "resident"


class HomeView:
    """One UI surface of the home: display + window + application.

    Each view runs its *own* :class:`HomeApplianceApplication` over the
    shared middleware, so residents keep independent active tabs, focus
    and input state while one discovery/event fan-out feeds them all.
    Several users may share one view (``add_user(..., view_of=...)``) —
    their sessions then hit the same shared-encode cache domain.
    """

    def __init__(self, home: "Home", display: DisplayServer,
                 window: UIWindow, app: HomeApplianceApplication,
                 surface: ServerSurface) -> None:
        self.home = home
        self.display = display
        self.window = window
        self.app = app
        self.surface = surface
        #: The user_ids currently seated in front of this view.
        self.users: set[str] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HomeView surface#{self.surface.surface_id} "
                f"users={sorted(self.users)}>")


class HomeUser:
    """One resident of a multi-user home.

    Bundles the per-user control plane: a UniInt proxy with its server
    session (bound to this user's view), a context manager driving that
    user's device selection, a preference store, and the set of
    personally owned devices.
    """

    def __init__(self, home: "Home", user_id: str, proxy: UniIntProxy,
                 session: ProxySession, server_session: ServerSession,
                 preferences: PreferenceStore,
                 context: ContextManager, view: HomeView) -> None:
        self.home = home
        self.user_id = user_id
        self.proxy = proxy
        self.session = session
        self.server_session = server_session
        self.preferences = preferences
        self.context = context
        #: The UI surface this user watches (possibly shared with others).
        self.view = view
        #: Devices owned by (registered only with) this user.
        self.devices: dict[str, InteractionDevice] = {}

    # -- the user's view ----------------------------------------------------

    @property
    def display(self) -> DisplayServer:
        return self.view.display

    @property
    def window(self) -> UIWindow:
        return self.view.window

    @property
    def app(self) -> HomeApplianceApplication:
        return self.view.app

    @property
    def surface(self) -> ServerSurface:
        return self.view.surface

    def show_appliance(self, name: str) -> bool:
        """Bring the named appliance's tab to the front *of this user's
        view only* — other residents' views keep their own active tab."""
        return self.app.show_appliance(name)

    # -- situation ----------------------------------------------------------

    @property
    def situation(self) -> UserSituation:
        return self.context.situation

    def set_situation(self, situation: UserSituation) -> SwitchRecord:
        """Replace this user's situation and re-select their devices."""
        return self.context.set_situation(situation)

    def update(self, **changes) -> SwitchRecord:
        """Evolve this user's situation (``user.update(hands_busy=True)``)."""
        return self.context.update(**changes)

    def move_to(self, location: str, **changes) -> SwitchRecord:
        """Follow-me: the user walks to another room.

        Re-scores devices for the new location and hands the live session
        off to whatever is at hand there; the handoff latency lands in the
        returned record's ``latency_s`` once the new output device has its
        first full frame (run the scheduler to observe it).
        """
        return self.update(location=location, **changes)

    # -- conveniences -------------------------------------------------------

    @property
    def current_input(self) -> Optional[str]:
        return self.proxy.current_input

    @property
    def current_output(self) -> Optional[str]:
        return self.proxy.current_output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HomeUser {self.user_id!r} in="
                f"{self.current_input!r} out={self.current_output!r}>")


class Home:
    """A complete simulated home with universal interaction."""

    def __init__(self, width: int = 480, height: int = 360,
                 scheduler: Optional[Scheduler] = None,
                 secret: Optional[str] = None,
                 pixel_format: PixelFormat = RGB888,
                 preferences: Optional[PreferenceStore] = None,
                 transport: str = "pipe",
                 backpressure: bool = True,
                 shared_encode: bool = True,
                 reactor: Optional[Reactor] = None,
                 name: str = "home",
                 event_budget: int = DEFAULT_EVENT_BUDGET,
                 resilience: bool = False,
                 resume_grace_s: float = 30.0,
                 heartbeat_s: float = 0.5,
                 dynamic_panels: bool = True) -> None:
        if transport not in TRANSPORT_KINDS:
            raise ValueError(f"unknown transport {transport!r} "
                             f"(expected one of {TRANSPORT_KINDS})")
        if reactor is not None and transport != "tcp":
            raise ValueError("a reactor only drives transport='tcp' homes")
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.name = name
        self.network = HomeNetwork(self.scheduler)
        self._width = width
        self._height = height
        #: Self-healing mode: server parks dead sessions for warm resume,
        #: every user session gets heartbeats + reconnect, device legs
        #: redial on failure (see ``SessionResilience``).
        self._resilience = resilience
        self._resume_grace_s = resume_grace_s
        self._heartbeat_s = heartbeat_s
        #: False pins every view's app to the legacy hand-written panels.
        self._dynamic_panels = dynamic_panels
        self.uniint_server = UniIntServer(None, self.scheduler,
                                          secret=secret,
                                          shared_encode=shared_encode,
                                          backpressure=backpressure,
                                          resume_grace_s=(resume_grace_s
                                                          if resilience
                                                          else 0.0))
        self._secret = secret
        self._pixel_format = pixel_format
        self._transport = transport
        # device legs of a TCP home ride real kernel socketpairs (devices
        # are in-process peers, not TCP clients of the UIP listener)
        self._leg_transport = "socket" if transport == "tcp" else transport
        self._backpressure = backpressure
        #: TCP mode: the I/O reactor, this home's membership in it, and
        #: the real listening socket UIP clients dial.
        self.reactor: Optional[Reactor] = None
        self.reactor_member: Optional[ReactorMember] = None
        self.listener = None
        self._owns_reactor = False
        self._pending_surfaces: deque = deque()
        if transport == "tcp":
            self.reactor = reactor if reactor is not None else Reactor()
            self._owns_reactor = reactor is None
            self.reactor_member = self.reactor.add_scheduler(
                self.scheduler, name=name, budget=event_budget)
            self.listener = self.uniint_server.listen(
                self.reactor, member=self.reactor_member,
                surface_for=self._surface_for_accept)
        self.arbiter = DeviceArbiter(self.scheduler)
        #: The home's command journal: every actuation from every view,
        #: device and API call lands here as a tracked Command.
        self.command_log = CommandLog()
        self.users: dict[str, HomeUser] = {}
        #: Every live UI surface of the home, in creation order.
        self.views: list[HomeView] = []
        # per-user last-seen output device, so switch-latency measurement
        # only arms on actual output handoffs (not input-only switches)
        self._last_outputs: dict[str, Optional[str]] = {}
        #: Every interaction device in the home, shared or personal.
        self.devices: dict[str, InteractionDevice] = {}
        #: device_id -> owning user_id, or None for shared-pool devices.
        self._device_owner: dict[str, Optional[str]] = {}
        self._shared_devices: dict[str, InteractionDevice] = {}
        self.appliances: dict[str, Appliance] = {}
        #: User hook fired once per appliance bell (each view's sessions
        #: additionally hear the bell as a beep on their output devices).
        self.on_bell = None
        self.network.events.subscribe("appliance.bell", self._on_bell_event)
        self.add_user(DEFAULT_USER, preferences=preferences)

    def _on_bell_event(self, event) -> None:
        if self.on_bell is not None:
            self.on_bell(event)

    def _route_bell(self, view: HomeView, event) -> None:
        """Per-surface bell routing: one application heard the appliance
        ding, so exactly its view's sessions get the UIP Bell."""
        self.uniint_server.ring_bell(view.surface)

    def _surface_for_accept(self, conn, addr):
        """Bind the next accepted TCP session to the surface its user's
        ``add_user`` queued (connects are driven one at a time, so the
        queue never holds more than one surface)."""
        return (self._pending_surfaces.popleft()
                if self._pending_surfaces else None)

    # -- users ------------------------------------------------------------------

    def _make_view(self, user_id: str) -> HomeView:
        """Provision one UI surface: display + window + per-view app."""
        display = DisplayServer(self._width, self._height)
        suffix = "" if user_id == DEFAULT_USER else f" [{user_id}]"
        window = UIWindow(self._width, self._height,
                          title=f"home appliances{suffix}")
        app_name = ("uniint-home-app" if user_id == DEFAULT_USER
                    else f"uniint-home-app-{user_id}")
        app = HomeApplianceApplication(self.network, window,
                                       app_name=app_name,
                                       dynamic_panels=self._dynamic_panels,
                                       command_log=self.command_log)
        display.map_fullscreen(window)
        surface = self.uniint_server.add_surface(display)
        view = HomeView(self, display, window, app, surface)
        app.on_bell = lambda event, v=view: self._route_bell(v, event)
        self.views.append(view)
        return view

    def add_user(self, user_id: str,
                 situation: Optional[UserSituation] = None,
                 preferences: Optional[PreferenceStore] = None,
                 pixel_format: Optional[PixelFormat] = None,
                 view_of: Optional[str] = None) -> HomeUser:
        """Provision one resident: view + proxy + server session + context.

        By default the new user gets their *own* UI surface — an
        independent appliance application with its own active tab, focus
        and input routing, fed by the same discovery fan-out.  With
        ``view_of`` the user instead sits down in front of an existing
        resident's view (sharing its surface *and* its shared-encode
        broadcast domain), which is how a family watches one wall panel.

        Either way the newcomer immediately sees every *shared* device in
        the home (their proxy gets its own transport leg to each) plus
        whatever personal devices are added for them later.
        """
        if user_id in self.users:
            raise ProxyError(f"user {user_id!r} already lives here")
        view = (self._make_view(user_id) if view_of is None
                else self.user(view_of).view)
        view.users.add(user_id)
        proxy = server_session = None
        try:
            proxy = UniIntProxy(self.scheduler,
                                proxy_id=f"uniint-proxy-{user_id}",
                                backpressure=self._backpressure)
            if self._transport == "tcp":
                client_endpoint = self._dial(user_id, view)
            else:
                link = self._make_link(f"uniint-link-{user_id}")
                server_session = self.uniint_server.accept(
                    link.a, surface=view.surface)
                client_endpoint = link.b
            session = proxy.connect(
                client_endpoint, secret=self._secret,
                pixel_format=(pixel_format if pixel_format is not None
                              else self._pixel_format))
            if self._transport == "tcp":
                server_session = self._await_accept(user_id)
            prefs = (preferences if preferences is not None
                     else PreferenceStore(user=user_id))
            context = ContextManager(proxy, SelectionPolicy(prefs),
                                     situation, user_id=user_id,
                                     arbiter=self.arbiter)
            context.on_switch = self._note_switch
            self.arbiter.register(context)
            user = HomeUser(self, user_id, proxy, session, server_session,
                            prefs, context, view)
            self.users[user_id] = user
            for device in self._shared_devices.values():
                device.connect(proxy, transport=self._leg_transport)
            if self._shared_devices:
                # the newcomer can use the shared pool right away (their
                # situation decides what, the arbiter decides whether)
                context.reselect()
            if self._resilience:
                self._enable_user_resilience(user)
        except BaseException:
            # a mid-provisioning failure (e.g. a shared device rejecting
            # the proxy) must not leak a ghost resident, session or view
            self._pending_surfaces.clear()
            self.users.pop(user_id, None)
            self.arbiter.unregister(user_id)
            if proxy is not None:
                # shared devices that already grew a leg to this proxy
                # drop it again (tolerant of never-connected ones)
                for device in self._shared_devices.values():
                    device.disconnect(proxy.proxy_id)
                proxy.disconnect()
            if server_session is not None:
                server_session.close()
            view.users.discard(user_id)
            if not view.users:
                view.app.close()
                self.uniint_server.remove_surface(view.surface)
                self.views.remove(view)
            raise
        return user

    def _enable_user_resilience(self, user: HomeUser) -> None:
        """Arm heartbeats + self-healing reconnect for one resident.

        The dial closure reopens the upstream leg to this home's server;
        the resuming client's token transplants the parked server state
        (surface binding, pixel format, encodings), so a TCP reconnect
        landing on the default surface still ends up on the user's view.
        """
        view = user.view
        if self._transport == "tcp":
            def dial(user_id=user.user_id):
                return connect_tcp(self.reactor, self.scheduler,
                                   self.listener.address,
                                   name=f"uniint-tcp-{user_id}-re",
                                   member=self.reactor_member)
        else:
            def dial(user_id=user.user_id, view=view):
                link = self._make_link(f"uniint-link-{user_id}-re")
                self.uniint_server.accept(link.a, surface=view.surface)
                return link.b
        user.session.enable_resilience(self.scheduler, dial,
                                       heartbeat_s=self._heartbeat_s)
        # a bounced device leg re-registers with a *new* binding: re-run
        # selection so the session points at it again
        user.proxy.on_device_registered = (
            lambda binding, u=user:
            u.context.reselect() if u.proxy.session is not None else None)

    def remove_user(self, user_id: str) -> None:
        """A resident leaves: tear down their sessions, device legs and —
        once nobody is left watching it — their UI surface.

        Their personal devices disconnect with them; shared devices stay
        (and any the user held are re-arbitrated to whoever wants them).
        """
        user = self.user(user_id)
        del self.users[user_id]
        self._last_outputs.pop(user_id, None)
        self.arbiter.unregister(user_id)
        for device_id in list(user.devices):
            device = user.devices.pop(device_id)
            self.devices.pop(device_id, None)
            self._device_owner.pop(device_id, None)
            device.disconnect()
        for device in self._shared_devices.values():
            device.disconnect(user.proxy.proxy_id)
        user.proxy.disconnect()
        view = user.view
        view.users.discard(user_id)
        if not view.users:
            # last viewer gone: stop this view's app from rebuilding on
            # discovery churn and release its surface + remaining sessions
            view.app.close()
            self.uniint_server.remove_surface(view.surface)
            self.views.remove(view)

    def user(self, user_id: str = DEFAULT_USER) -> HomeUser:
        found = self.users.get(user_id)
        if found is None:
            raise ProxyError(f"no user {user_id!r} in this home")
        return found

    def _make_link(self, name: str):
        # the simulated (or socketpair-backed) Ethernet backbone between
        # the UniInt server and one user's proxy
        return make_transport_pair(self.scheduler, ETHERNET_100,
                                   name=name, kind=self._transport)

    def _dial(self, user_id: str, view: HomeView):
        """TCP mode: open the user's client leg to this home's listener.

        The view's surface is queued for :meth:`_surface_for_accept`;
        :meth:`_await_accept` then drives the reactor until the matching
        server-side session exists, so connects stay serialized and each
        accept binds to the right surface.
        """
        self._known_sessions = {id(s) for s in self.uniint_server.sessions}
        self._pending_surfaces.append(view.surface)
        return connect_tcp(self.reactor, self.scheduler,
                           self.listener.address,
                           name=f"uniint-tcp-{user_id}",
                           member=self.reactor_member)

    def _await_accept(self, user_id: str):
        known = self._known_sessions

        def accepted():
            return any(id(s) not in known
                       for s in self.uniint_server.sessions)

        if not self.reactor.run_until(accepted):
            raise TransportError(
                f"timed out waiting for {self.name!r} to accept "
                f"user {user_id!r}'s TCP connection")
        return next(s for s in self.uniint_server.sessions
                    if id(s) not in known)

    def _note_switch(self, record: SwitchRecord) -> None:
        """Arm follow-me latency measurement for an output handoff."""
        previous = self._last_outputs.get(record.user_id)
        self._last_outputs[record.user_id] = record.output_device
        if record.output_device is None or record.output_device == previous:
            return  # no output handoff happened (e.g. input-only switch)
        device = self.devices.get(record.output_device)
        if device is None:
            return
        previous = device.on_frame

        def first_frame(image, _device=device, _previous=previous):
            if record.latency_s is None:
                record.latency_s = self.scheduler.now() - record.time
            _device.on_frame = _previous
            if _previous is not None:
                _previous(image)

        device.on_frame = first_frame

    # -- legacy single-user attributes ---------------------------------------------

    @property
    def default_user(self) -> HomeUser:
        return self.user(DEFAULT_USER)

    @property
    def display(self) -> DisplayServer:
        return self.default_user.display

    @property
    def window(self) -> UIWindow:
        return self.default_user.window

    @property
    def app(self) -> HomeApplianceApplication:
        return self.default_user.app

    @property
    def proxy(self) -> UniIntProxy:
        return self.default_user.proxy

    @property
    def session(self) -> ProxySession:
        return self.default_user.session

    @property
    def server_session(self) -> ServerSession:
        return self.default_user.server_session

    @property
    def context(self) -> ContextManager:
        return self.default_user.context

    @property
    def preferences(self) -> PreferenceStore:
        return self.default_user.preferences

    # -- population -----------------------------------------------------------

    def add_appliance(self, appliance: Appliance) -> Appliance:
        """Plug an appliance into the home bus (hotplug is fine)."""
        if appliance.name in self.appliances:
            raise HaviError(f"appliance {appliance.name!r} is already "
                            f"in this home")
        self.network.attach_device(appliance)
        self.appliances[appliance.name] = appliance
        return appliance

    def remove_appliance(self, name: str) -> None:
        """Unplug the named appliance (hot-unplug is fine).

        Views whose active tab showed it fall back to the next tab once
        the bus reset lands; re-adding an appliance with the same GUID
        later re-installs it cleanly.
        """
        appliance = self.appliances.pop(name, None)
        if appliance is None:
            raise HaviError(
                f"no appliance {name!r} in this home "
                f"(have: {sorted(self.appliances) or 'none'})")
        self.network.detach_device(appliance.guid)

    def add_device(self, device: InteractionDevice,
                   user: Optional[str] = None,
                   shared: bool = False,
                   reselect: bool = True) -> InteractionDevice:
        """Register an interaction device with the home.

        Personal devices (the default) belong to one user — only that
        user's proxy sees them.  ``shared=True`` puts the device in the
        shared pool instead: every current and future user's proxy gets a
        leg to it, and the arbiter decides who holds it at any moment.
        """
        if shared and user is not None:
            raise ProxyError("a device is either shared or owned, not both")
        if device.device_id in self.devices:
            raise ProxyError(
                f"device {device.device_id!r} already in this home")
        if self._resilience:
            device.auto_reconnect = True
        if shared:
            for home_user in self.users.values():
                device.connect(home_user.proxy, transport=self._leg_transport)
            self._shared_devices[device.device_id] = device
            self._device_owner[device.device_id] = None
        else:
            owner = self.user(user if user is not None else DEFAULT_USER)
            device.connect(owner.proxy, transport=self._leg_transport)
            owner.devices[device.device_id] = device
            self._device_owner[device.device_id] = owner.user_id
        self.devices[device.device_id] = device
        if reselect:
            if shared:
                for home_user in self.users.values():
                    home_user.context.reselect()
            else:
                owner.context.reselect()
        return device

    def remove_device(self, device_id: str, reselect: bool = True) -> None:
        if device_id not in self.devices:
            raise ProxyError(f"no device {device_id!r} in this home")
        device = self.devices.pop(device_id)
        owner_id = self._device_owner.pop(device_id)
        if owner_id is None:
            self._shared_devices.pop(device_id)
            for home_user in self.users.values():
                if device_id in home_user.proxy.devices:
                    home_user.proxy.unregister_device(device_id)
        else:
            owner = self.users.get(owner_id)
            if owner is not None:
                owner.devices.pop(device_id, None)
                if device_id in owner.proxy.devices:
                    owner.proxy.unregister_device(device_id)
        device.disconnect()
        if reselect:
            if owner_id is None:
                for home_user in self.users.values():
                    home_user.context.reselect()
            elif owner_id in self.users:
                self.users[owner_id].context.reselect()

    # -- running ----------------------------------------------------------------

    def settle(self) -> None:
        """Run the simulation until quiescent.

        A TCP home settles through its reactor (draining real sockets as
        well as events); sharing a reactor with sibling homes means their
        events drain too — that is the fleet's one-loop model.
        """
        if self.reactor is not None:
            self.reactor.run_until_idle()
        else:
            self.scheduler.run_until_idle()

    def run_for(self, seconds: float) -> None:
        """Advance the simulated home by ``seconds``.

        In TCP mode the reactor has no global virtual deadline (each home
        keeps its own clock), so this settles outstanding work and then
        advances this home's clock the remaining distance.
        """
        if self.reactor is not None:
            deadline = self.scheduler.now() + seconds
            self.reactor.run_until_idle()
            if self.scheduler.now() < deadline:
                self.scheduler.clock.advance_to(deadline)
        else:
            self.scheduler.run_for(seconds)

    def close(self) -> None:
        """Tear down a TCP home's real sockets (no-op otherwise).

        Disconnects every proxy and server session, closes the listener,
        then hard-closes whatever fds are still registered under this
        home's member — deliberately *not* a graceful EOF drain, so one
        stalled sibling on a shared reactor can never wedge another
        home's teardown.  A home that owns its reactor closes it too.
        """
        if self.reactor is None:
            return
        for device in self.devices.values():
            device.auto_reconnect = False  # teardown is not a failure
        for user in list(self.users.values()):
            user.proxy.disconnect()
        for session in list(self.uniint_server.sessions):
            session.close()
        if self.listener is not None:
            self.listener.close()
            self.listener = None
        if self.reactor_member is not None:
            for handle in self.reactor.handles_of(self.reactor_member):
                handle.unregister()
                try:
                    handle.fileobj.close()
                except OSError:  # pragma: no cover
                    pass
            self.reactor.remove_scheduler(self.reactor_member)
        if self._owns_reactor:
            self.reactor.close()
        self.reactor = None
        self.reactor_member = None

    # -- programmatic control ---------------------------------------------------

    def submit_command(self, appliance: str, opcode: str,
                       payload: Optional[dict] = None,
                       origin: str = "api") -> Command:
        """Drive an appliance programmatically through the command spine.

        ``appliance`` is a device name (``"Oven"``) or GUID.  The FCM is
        chosen by capability: the first of the appliance's FCMs whose
        descriptor declares ``opcode`` (falling back to the first FCM for
        descriptor-less appliances — an unsupported opcode then simply
        finishes FAILED/EUNSUPPORTED, still fully tracked).

        Returns the :class:`~repro.app.commands.Command`; poll
        ``command.state`` after :meth:`settle` or hook
        ``command.on_done``.  This is the seam the external HTTP gateway
        will wrap: one call, one trackable job.
        """
        app = self.default_user.app
        target = None
        for handle in app.appliances:
            if handle.name == appliance or handle.guid == appliance:
                target = handle
                break
        if target is None:
            raise HaviError(
                f"no appliance {appliance!r} in this home "
                f"(have: {sorted(a.name for a in app.appliances) or 'none'})")
        if not target.fcms:
            raise HaviError(f"appliance {appliance!r} has no FCMs")
        chosen = target.fcms[0]
        for fcm_handle in target.fcms:
            descriptor = fcm_handle.descriptor
            if descriptor is not None and opcode in descriptor.commands():
                chosen = fcm_handle
                break
        return chosen.command(opcode, payload, origin=origin)

    # -- conveniences -----------------------------------------------------------------

    def screenshot(self, user_id: str = DEFAULT_USER) -> "UIWindow":
        """A user's application window (``.bitmap`` holds the pixels).

        Composites through the server's distribute path, so a screenshot
        taken between damage and the scheduled flush doesn't swallow the
        update the user's sessions were about to receive.
        """
        user = self.user(user_id)
        user.surface._composite_and_distribute()
        return user.window

"""The Home facade: one call assembles the entire simulated house.

A :class:`Home` contains the full stack of the paper's prototype:

* a :class:`~repro.havi.HomeNetwork` (HAVi middleware + hot-pluggable bus),
* a :class:`~repro.windows.DisplayServer` hosting the
  :class:`~repro.app.HomeApplianceApplication`'s window,
* a :class:`~repro.server.UniIntServer` exporting that window system,
* a :class:`~repro.proxy.UniIntProxy` connected to it,
* a :class:`~repro.context.ContextManager` driving device selection.

Examples and experiments build on this facade; the pieces remain
individually constructible for tests.
"""

from __future__ import annotations

from typing import Optional

from repro.app.application import HomeApplianceApplication
from repro.appliances.base import Appliance
from repro.context.manager import ContextManager
from repro.context.model import UserSituation
from repro.context.policy import SelectionPolicy
from repro.context.preferences import PreferenceStore
from repro.devices.base import InteractionDevice
from repro.graphics.pixelformat import RGB888, PixelFormat
from repro.havi.manager import HomeNetwork
from repro.net.link import ETHERNET_100
from repro.net.pipe import make_pipe
from repro.net.transport import make_socket_transport_pair
from repro.proxy.proxy import UniIntProxy
from repro.server.uniint_server import UniIntServer
from repro.toolkit.window import UIWindow
from repro.util.scheduler import Scheduler
from repro.windows.server import DisplayServer


class Home:
    """A complete simulated home with universal interaction."""

    def __init__(self, width: int = 480, height: int = 360,
                 scheduler: Optional[Scheduler] = None,
                 secret: Optional[str] = None,
                 pixel_format: PixelFormat = RGB888,
                 preferences: Optional[PreferenceStore] = None,
                 transport: str = "pipe",
                 backpressure: bool = True) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.network = HomeNetwork(self.scheduler)
        self.display = DisplayServer(width, height)
        self.window = UIWindow(width, height, title="home appliances")
        self.app = HomeApplianceApplication(self.network, self.window)
        self.display.map_fullscreen(self.window)
        self.uniint_server = UniIntServer(self.display, self.scheduler,
                                          secret=secret,
                                          backpressure=backpressure)
        self.proxy = UniIntProxy(self.scheduler, backpressure=backpressure)
        if transport == "pipe":
            # the simulated Ethernet backbone between server and proxy
            link = make_pipe(self.scheduler, ETHERNET_100,
                             name="uniint-link")
        elif transport == "socket":
            # a real in-process socketpair byte stream (same stack, no
            # simulated link timing; credit still sized for Ethernet)
            link = make_socket_transport_pair(self.scheduler, ETHERNET_100,
                                              name="uniint-link")
        else:
            raise ValueError(f"unknown transport {transport!r} "
                             "(expected 'pipe' or 'socket')")
        self.server_session = self.uniint_server.accept(link.a)
        self.session = self.proxy.connect(link.b, secret=secret,
                                          pixel_format=pixel_format)
        self.preferences = (preferences if preferences is not None
                            else PreferenceStore())
        self.context = ContextManager(self.proxy,
                                      SelectionPolicy(self.preferences))
        self.devices: dict[str, InteractionDevice] = {}
        self.appliances: dict[str, Appliance] = {}
        #: User hook fired on appliance bells (also rung through to the
        #: current output device as a beep).
        self.on_bell = None
        self.app.on_bell = self._route_bell

    def _route_bell(self, event) -> None:
        self.uniint_server.ring_bell()
        if self.on_bell is not None:
            self.on_bell(event)

    # -- population -----------------------------------------------------------

    def add_appliance(self, appliance: Appliance) -> Appliance:
        """Plug an appliance into the home bus (hotplug is fine)."""
        self.network.attach_device(appliance)
        self.appliances[appliance.name] = appliance
        return appliance

    def remove_appliance(self, name: str) -> None:
        appliance = self.appliances.pop(name)
        self.network.detach_device(appliance.guid)

    def add_device(self, device: InteractionDevice,
                   reselect: bool = True) -> InteractionDevice:
        """Register an interaction device with the proxy."""
        device.connect(self.proxy)
        self.devices[device.device_id] = device
        if reselect:
            self.context.reselect()
        return device

    def remove_device(self, device_id: str, reselect: bool = True) -> None:
        self.devices.pop(device_id)
        self.proxy.unregister_device(device_id)
        if reselect:
            self.context.reselect()

    # -- running ----------------------------------------------------------------

    def settle(self) -> None:
        """Run the simulation until quiescent."""
        self.scheduler.run_until_idle()

    def run_for(self, seconds: float) -> None:
        """Advance the simulated home by ``seconds``."""
        self.scheduler.run_for(seconds)

    # -- conveniences -----------------------------------------------------------------

    def screenshot(self) -> "UIWindow":
        """The application window (``.bitmap`` holds the current pixels)."""
        self.display.composite()
        return self.window

"""Low-level byte-stream cursor for incremental protocol parsing.

RFB-style protocols are raw byte streams: a message's length is only known
once part of it has been parsed.  :class:`Cursor` wraps a buffer with typed
reads that raise :class:`NeedMore` when the buffer runs dry; decoders catch
it, keep their buffer, and retry when more bytes arrive.
"""

from __future__ import annotations

import struct

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_S32 = struct.Struct(">i")


class NeedMore(Exception):
    """Raised when a parse needs bytes that have not arrived yet.

    ``needed`` is the minimum buffer length (an absolute offset in the
    cursor's buffer) at which the failing read could succeed — decoders
    use it to skip pointless re-parses while a message trickles in.  It
    is a lower bound, not a promise the whole message fits by then.
    """

    def __init__(self, needed: int = 0) -> None:
        super().__init__(needed)
        self.needed = needed


class Cursor:
    """A read cursor over a bytes-like buffer.

    The buffer may be ``bytes`` or a ``bytearray`` the caller promises not
    to mutate below ``pos`` while parsing (decoders append to their buffer
    between parses, never rewrite consumed bytes); slices handed out by
    :meth:`take` are copies either way.
    """

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def take(self, n: int) -> bytes:
        if self.remaining() < n:
            raise NeedMore(self.pos + n)
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def peek_u8(self) -> int:
        if self.remaining() < 1:
            raise NeedMore(self.pos + 1)
        return self.data[self.pos]

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def s32(self) -> int:
        return _S32.unpack(self.take(4))[0]

    def skip(self, n: int) -> None:
        self.take(n)


class Writer:
    """Append-only byte builder mirroring :class:`Cursor`'s types."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Writer":
        self._parts.append(_U8.pack(value))
        return self

    def u16(self, value: int) -> "Writer":
        self._parts.append(_U16.pack(value))
        return self

    def u32(self, value: int) -> "Writer":
        self._parts.append(_U32.pack(value))
        return self

    def s32(self, value: int) -> "Writer":
        self._parts.append(_S32.pack(value))
        return self

    def raw(self, data: bytes) -> "Writer":
        self._parts.append(data)
        return self

    def pad(self, n: int) -> "Writer":
        self._parts.append(b"\x00" * n)
        return self

    #: Parts below this size are fused with their neighbours in
    #: :meth:`chunks` — tiny header fields are not worth an iovec entry
    #: (or a per-chunk receive dispatch); big payloads stay zero-copy.
    COALESCE_BELOW = 2048

    def chunks(self) -> list[bytes]:
        """The accumulated parts as a scatter-gather chunk list.

        Runs of parts smaller than :attr:`COALESCE_BELOW` are joined into
        one chunk (headers, small payloads); parts at or above it pass
        through by reference, so a large payload is never copied.  Hand
        the list to a transport's vectored ``send`` (or :func:`repro.net.
        framing.frame_chunks`) to put the message on the wire without
        materialising the concatenated message.
        """
        out: list[bytes] = []
        run: list[bytes] = []
        for part in self._parts:
            if len(part) >= self.COALESCE_BELOW:
                if run:
                    out.append(b"".join(run))
                    run = []
                out.append(part)
            else:
                run.append(part)
        if run:
            out.append(b"".join(run))
        return out

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

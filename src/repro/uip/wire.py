"""Low-level byte-stream cursor for incremental protocol parsing.

RFB-style protocols are raw byte streams: a message's length is only known
once part of it has been parsed.  :class:`Cursor` wraps a buffer with typed
reads that raise :class:`NeedMore` when the buffer runs dry; decoders catch
it, keep their buffer, and retry when more bytes arrive.
"""

from __future__ import annotations

import struct

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_S32 = struct.Struct(">i")


class NeedMore(Exception):
    """Raised when a parse needs bytes that have not arrived yet."""


class Cursor:
    """A read cursor over an immutable bytes-like buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def take(self, n: int) -> bytes:
        if self.remaining() < n:
            raise NeedMore
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def peek_u8(self) -> int:
        if self.remaining() < 1:
            raise NeedMore
        return self.data[self.pos]

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def s32(self) -> int:
        return _S32.unpack(self.take(4))[0]

    def skip(self, n: int) -> None:
        self.take(n)


class Writer:
    """Append-only byte builder mirroring :class:`Cursor`'s types."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Writer":
        self._parts.append(_U8.pack(value))
        return self

    def u16(self, value: int) -> "Writer":
        self._parts.append(_U16.pack(value))
        return self

    def u32(self, value: int) -> "Writer":
        self._parts.append(_U32.pack(value))
        return self

    def s32(self, value: int) -> "Writer":
        self._parts.append(_S32.pack(value))
        return self

    def raw(self, data: bytes) -> "Writer":
        self._parts.append(data)
        return self

    def pad(self, n: int) -> "Writer":
        self._parts.append(b"\x00" * n)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

"""X11-style keysyms: the vocabulary of universal input key events.

The paper fixes keyboard/mouse events as the universal *input* events.  We
use the X11 keysym space: printable ASCII maps to itself, control keys live
in the 0xFF00 page.  Input plug-ins translate device-native events (keypad
digits, voice commands, gestures) into these.
"""

from __future__ import annotations

# -- control keys (X11 0xFF00 page) ------------------------------------------

BACKSPACE = 0xFF08
TAB = 0xFF09
RETURN = 0xFF0D
ESCAPE = 0xFF1B
HOME = 0xFF50
LEFT = 0xFF51
UP = 0xFF52
RIGHT = 0xFF53
DOWN = 0xFF54
PAGE_UP = 0xFF55
PAGE_DOWN = 0xFF56
END = 0xFF57
INSERT = 0xFF63
MENU = 0xFF67
F1 = 0xFFBE
F2 = 0xFFBF
F3 = 0xFFC0
F4 = 0xFFC1
F5 = 0xFFC2
F6 = 0xFFC3
F7 = 0xFFC4
F8 = 0xFFC5
F9 = 0xFFC6
F10 = 0xFFC7
F11 = 0xFFC8
F12 = 0xFFC9
SHIFT_L = 0xFFE1
SHIFT_R = 0xFFE2
CONTROL_L = 0xFFE3
CONTROL_R = 0xFFE4
ALT_L = 0xFFE9
ALT_R = 0xFFEA
DELETE = 0xFFFF
SPACE = 0x0020

#: Names for the non-printable keysyms (diagnostics, trace files).
NAMES: dict[int, str] = {
    BACKSPACE: "BackSpace",
    TAB: "Tab",
    RETURN: "Return",
    ESCAPE: "Escape",
    HOME: "Home",
    LEFT: "Left",
    UP: "Up",
    RIGHT: "Right",
    DOWN: "Down",
    PAGE_UP: "PageUp",
    PAGE_DOWN: "PageDown",
    END: "End",
    INSERT: "Insert",
    MENU: "Menu",
    F1: "F1", F2: "F2", F3: "F3", F4: "F4", F5: "F5", F6: "F6",
    F7: "F7", F8: "F8", F9: "F9", F10: "F10", F11: "F11", F12: "F12",
    SHIFT_L: "Shift_L",
    SHIFT_R: "Shift_R",
    CONTROL_L: "Control_L",
    CONTROL_R: "Control_R",
    ALT_L: "Alt_L",
    ALT_R: "Alt_R",
    DELETE: "Delete",
}

_NAME_TO_SYM = {name.lower(): sym for sym, name in NAMES.items()}


def keysym_for_char(char: str) -> int:
    """Keysym for a printable character (identity for Latin-1)."""
    if len(char) != 1:
        raise ValueError(f"expected one character, got {char!r}")
    code = ord(char)
    if 0x20 <= code <= 0xFF:
        return code
    raise ValueError(f"no keysym for non-Latin-1 character {char!r}")


def char_for_keysym(keysym: int) -> str | None:
    """Printable character for a keysym, or None for control keys."""
    if 0x20 <= keysym <= 0xFF:
        return chr(keysym)
    return None


def name_for_keysym(keysym: int) -> str:
    """Human-readable name, e.g. for event traces."""
    char = char_for_keysym(keysym)
    if char is not None:
        return char
    return NAMES.get(keysym, f"keysym-0x{keysym:04X}")


def keysym_for_name(name: str) -> int:
    """Inverse of :func:`name_for_keysym` (printable chars and names)."""
    if len(name) == 1:
        return keysym_for_char(name)
    try:
        return _NAME_TO_SYM[name.lower()]
    except KeyError:
        raise ValueError(f"unknown keysym name {name!r}") from None


# -- pointer buttons -----------------------------------------------------------

BUTTON_LEFT = 0x01
BUTTON_MIDDLE = 0x02
BUTTON_RIGHT = 0x04
SCROLL_UP = 0x08
SCROLL_DOWN = 0x10

"""The universal interaction protocol (UIP).

The paper adopts the stateless thin-client protocol family (VNC/RFB, Citrix,
Sun Ray) as its *universal interaction protocol*: bitmap rectangles flow from
the UniInt server to whoever renders them; keyboard and pointer events flow
back.  This package is a complete RFB-class binary protocol:

* versioned handshake with optional shared-secret authentication
  (:mod:`repro.uip.handshake`),
* pixel-format negotiation (:mod:`repro.graphics.pixelformat`),
* framebuffer-update encodings RAW / COPYRECT / RRE / HEXTILE / ZLIB /
  ZRLE, with tiered compression (:mod:`repro.uip.encodings`),
* the client and server message vocabularies with incremental byte-stream
  decoders (:mod:`repro.uip.messages`),
* X11-style keysyms for the universal input events (:mod:`repro.uip.keysyms`).

It is deliberately *RFB-class*, not RFB-conformant: the message layouts are
near-identical, which preserves every property the paper relies on (stateless
server, bitmap output, key/pointer input) without claiming interoperability.
"""

from repro.uip import keysyms
from repro.uip.encodings import (
    COMPRESSION_TIERS,
    COPYRECT,
    DESKTOP_SIZE,
    HEXTILE,
    RAW,
    RRE,
    STATEFUL_ENCODINGS,
    ZLIB,
    ZRLE,
    DecoderState,
    EncodeCache,
    EncoderState,
    best_encoding,
    decode_rect,
    decode_zrle_tiles,
    encode_rect,
    encode_zrle_tiles,
)
from repro.uip.handshake import (
    ClientHandshake,
    HandshakeResult,
    ServerHandshake,
    PROTOCOL_VERSION,
    VERSION_1_1,
)
from repro.uip.messages import (
    Bell,
    ClientCutText,
    ClientMessageDecoder,
    FramebufferUpdate,
    FramebufferUpdateRequest,
    KeyEvent,
    Ping,
    PointerEvent,
    Pong,
    RectUpdate,
    ResumeSession,
    ServerCutText,
    ServerMessageDecoder,
    SessionGrant,
    SetEncodings,
    SetPixelFormat,
)

__all__ = [
    "Bell",
    "COMPRESSION_TIERS",
    "COPYRECT",
    "ClientCutText",
    "ClientHandshake",
    "ClientMessageDecoder",
    "DESKTOP_SIZE",
    "DecoderState",
    "EncodeCache",
    "EncoderState",
    "FramebufferUpdate",
    "FramebufferUpdateRequest",
    "HEXTILE",
    "HandshakeResult",
    "KeyEvent",
    "PROTOCOL_VERSION",
    "Ping",
    "PointerEvent",
    "Pong",
    "RAW",
    "RRE",
    "RectUpdate",
    "ResumeSession",
    "STATEFUL_ENCODINGS",
    "ServerCutText",
    "ServerHandshake",
    "ServerMessageDecoder",
    "SessionGrant",
    "SetEncodings",
    "SetPixelFormat",
    "VERSION_1_1",
    "ZLIB",
    "ZRLE",
    "best_encoding",
    "decode_rect",
    "decode_zrle_tiles",
    "encode_rect",
    "encode_zrle_tiles",
    "keysyms",
]

"""Universal interaction protocol messages and stream decoders.

Client -> server (the *universal input events* plus session control):

====  ==========================  =======================================
type  message                     payload
====  ==========================  =======================================
0     SetPixelFormat              3 pad, 16-byte pixel format
2     SetEncodings                1 pad, u16 count, s32 encodings
3     FramebufferUpdateRequest    u8 incremental, u16 x, y, w, h
4     KeyEvent                    u8 down, 2 pad, u32 keysym
5     PointerEvent                u8 button mask, u16 x, u16 y
6     ClientCutText               3 pad, u32 length, latin-1 text
7     Ping                        3 pad, u32 sequence (liveness probe)
8     ResumeSession               3 pad, u32 resume token
====  ==========================  =======================================

Server -> client (the *universal output events*):

====  ==========================  =======================================
0     FramebufferUpdate           1 pad, u16 nrects, rect headers+payloads
2     Bell                        —
3     ServerCutText               3 pad, u32 length, latin-1 text
4     Pong                        3 pad, u32 sequence (liveness answer)
5     SessionGrant                3 pad, u32 resume token
====  ==========================  =======================================

Ping/Pong carry the session liveness heartbeat (miss-based death
detection in the proxy); SessionGrant hands a freshly handshaken client
the token with which a later connection may ResumeSession into the same
server-side state (surface binding, pixel format, encodings) after a
transport fault — see :mod:`repro.server.uniint_server` parking.

Messages arrive as an undelimited byte stream; :class:`ClientMessageDecoder`
and :class:`ServerMessageDecoder` parse incrementally, retrying a partially
received message once more bytes arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphics.pixelformat import PixelFormat
from repro.graphics.region import Rect
from repro.uip import encodings as enc
from repro.uip.wire import Cursor, NeedMore, Writer
from repro.util.errors import ProtocolError

@dataclass(frozen=True)
class _DeferredStream:
    """Compressed rect bytes awaiting post-parse inflation.

    Covers every encoding that rides the persistent per-session zlib
    stream (ZLIB, ZRLE): the inflater must see each compressed byte
    exactly once, so inflation waits until the whole message parsed.
    """

    encoding: int
    data: bytes


# Client message types.
MSG_SET_PIXEL_FORMAT = 0
MSG_SET_ENCODINGS = 2
MSG_FRAMEBUFFER_UPDATE_REQUEST = 3
MSG_KEY_EVENT = 4
MSG_POINTER_EVENT = 5
MSG_CLIENT_CUT_TEXT = 6
MSG_PING = 7
MSG_RESUME_SESSION = 8

# Server message types.
MSG_FRAMEBUFFER_UPDATE = 0
MSG_BELL = 2
MSG_SERVER_CUT_TEXT = 3
MSG_PONG = 4
MSG_SESSION_GRANT = 5


# -- client -> server -----------------------------------------------------------


@dataclass(frozen=True)
class SetPixelFormat:
    pixel_format: PixelFormat

    def encode(self) -> bytes:
        return (Writer().u8(MSG_SET_PIXEL_FORMAT).pad(3)
                .raw(self.pixel_format.encode()).getvalue())


@dataclass(frozen=True)
class SetEncodings:
    encodings: tuple[int, ...]

    def encode(self) -> bytes:
        writer = Writer().u8(MSG_SET_ENCODINGS).pad(1)
        writer.u16(len(self.encodings))
        for encoding in self.encodings:
            writer.s32(encoding)
        return writer.getvalue()


@dataclass(frozen=True)
class FramebufferUpdateRequest:
    incremental: bool
    rect: Rect

    def encode(self) -> bytes:
        return (Writer().u8(MSG_FRAMEBUFFER_UPDATE_REQUEST)
                .u8(int(self.incremental))
                .u16(self.rect.x).u16(self.rect.y)
                .u16(self.rect.w).u16(self.rect.h).getvalue())


@dataclass(frozen=True)
class KeyEvent:
    """A universal input key event: X11-style keysym, press or release."""

    down: bool
    keysym: int

    def encode(self) -> bytes:
        return (Writer().u8(MSG_KEY_EVENT).u8(int(self.down)).pad(2)
                .u32(self.keysym).getvalue())


@dataclass(frozen=True)
class PointerEvent:
    """A universal input pointer event: absolute position + button mask."""

    buttons: int
    x: int
    y: int

    def encode(self) -> bytes:
        return (Writer().u8(MSG_POINTER_EVENT).u8(self.buttons)
                .u16(self.x).u16(self.y).getvalue())


@dataclass(frozen=True)
class ClientCutText:
    text: str

    def encode(self) -> bytes:
        data = self.text.encode("latin-1")
        return (Writer().u8(MSG_CLIENT_CUT_TEXT).pad(3)
                .u32(len(data)).raw(data).getvalue())


@dataclass(frozen=True)
class Ping:
    """Liveness probe: the proxy asks "is this session still alive?"."""

    seq: int

    def encode(self) -> bytes:
        return Writer().u8(MSG_PING).pad(3).u32(self.seq).getvalue()


@dataclass(frozen=True)
class ResumeSession:
    """Reclaim a parked server-side session after a transport fault.

    Sent as the first message of a fresh connection (instead of the cold
    SetPixelFormat/SetEncodings renegotiation) with the token a previous
    :class:`SessionGrant` issued; the server restores the parked surface
    binding, pixel format and encodings, and the client follows up with
    one non-incremental update request — the single full-frame resync.
    """

    token: int

    def encode(self) -> bytes:
        return (Writer().u8(MSG_RESUME_SESSION).pad(3)
                .u32(self.token).getvalue())


# -- server -> client ------------------------------------------------------------


@dataclass(frozen=True)
class RectUpdate:
    """One rectangle of a framebuffer update.

    ``payload`` is a packed pixel array for pixel encodings, an (src_x,
    src_y) tuple for COPYRECT, or a (width, height) tuple for DESKTOP_SIZE.
    """

    rect: Rect
    encoding: int
    payload: object = None


@dataclass(frozen=True)
class FramebufferUpdate:
    rects: tuple[RectUpdate, ...]

    def encode_chunks(self, state: enc.EncoderState) -> list[bytes]:
        """The wire message as a scatter-gather chunk list.

        Rect payloads (the bulk of the bytes) ride as their own chunks, so
        the full message is never concatenated here — transports send the
        list vectored, and the server's shared-encode broadcast hands one
        cached list to every session.
        """
        writer = Writer().u8(MSG_FRAMEBUFFER_UPDATE).pad(1)
        writer.u16(len(self.rects))
        for update in self.rects:
            rect = update.rect
            writer.u16(rect.x).u16(rect.y).u16(rect.w).u16(rect.h)
            writer.s32(update.encoding)
            if update.encoding == enc.COPYRECT:
                src_x, src_y = update.payload  # type: ignore[misc]
                writer.raw(enc.encode_copyrect(src_x, src_y))
            elif update.encoding == enc.DESKTOP_SIZE:
                pass  # size travels in the rect header itself
            else:
                writer.raw(enc.encode_rect(
                    state, update.payload, update.encoding))
        return writer.chunks()

    def encode(self, state: enc.EncoderState) -> bytes:
        return b"".join(self.encode_chunks(state))


@dataclass(frozen=True)
class Bell:
    def encode(self) -> bytes:
        return Writer().u8(MSG_BELL).getvalue()


@dataclass(frozen=True)
class ServerCutText:
    text: str

    def encode(self) -> bytes:
        data = self.text.encode("latin-1")
        return (Writer().u8(MSG_SERVER_CUT_TEXT).pad(3)
                .u32(len(data)).raw(data).getvalue())


@dataclass(frozen=True)
class Pong:
    """Liveness answer, echoing the :class:`Ping` sequence number."""

    seq: int

    def encode(self) -> bytes:
        return Writer().u8(MSG_PONG).pad(3).u32(self.seq).getvalue()


@dataclass(frozen=True)
class SessionGrant:
    """The resume token for this session (sent once after the handshake
    when the server has parking enabled)."""

    token: int

    def encode(self) -> bytes:
        return (Writer().u8(MSG_SESSION_GRANT).pad(3)
                .u32(self.token).getvalue())


# -- stream decoders ------------------------------------------------------------------


#: Compact a decoder's buffer once this many consumed bytes accrue (and
#: they outnumber the live remainder): amortised-linear, never quadratic.
_COMPACT_THRESHOLD = 16 * 1024


class _StreamDecoder:
    """Shared retry-from-message-start incremental parsing machinery.

    The buffer keeps a persistent read offset: each parsed message advances
    the offset instead of rebuilding ``bytes(self._buffer)`` and
    del-compacting per message (which made a burst of n messages cost
    O(n²) in rebuffering).  The consumed prefix is trimmed only once it
    passes :data:`_COMPACT_THRESHOLD`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._pos = 0
        # Minimum buffer length before re-attempting a stalled parse
        # (from NeedMore.needed): a message trickling in chunk by chunk
        # costs one length check per chunk, not a re-parse from the
        # message start each time.
        self._need = 0

    def feed(self, data: bytes) -> list:
        """Absorb bytes, return every complete message parsed."""
        self._buffer.extend(data)
        messages = []
        while (self._pos < len(self._buffer)
               and len(self._buffer) >= self._need):
            cursor = Cursor(self._buffer, self._pos)
            try:
                message = self._parse_one(cursor)
            except NeedMore as stall:
                # lower bound; +1 guarantees progress even if unset
                self._need = max(stall.needed, len(self._buffer) + 1)
                break
            self._need = 0
            self._pos = cursor.pos
            messages.append(message)
        if (self._pos > _COMPACT_THRESHOLD
                and self._pos > len(self._buffer) - self._pos):
            del self._buffer[:self._pos]
            if self._need:
                self._need -= self._pos
            self._pos = 0
        return messages

    def _parse_one(self, cursor: Cursor):
        raise NotImplementedError

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer) - self._pos


class ClientMessageDecoder(_StreamDecoder):
    """Parses the client->server stream (runs inside the UniInt server)."""

    def _parse_one(self, cursor: Cursor):
        msg_type = cursor.u8()
        if msg_type == MSG_SET_PIXEL_FORMAT:
            cursor.skip(3)
            return SetPixelFormat(PixelFormat.decode(cursor.take(16)))
        if msg_type == MSG_SET_ENCODINGS:
            cursor.skip(1)
            count = cursor.u16()
            return SetEncodings(tuple(cursor.s32() for _ in range(count)))
        if msg_type == MSG_FRAMEBUFFER_UPDATE_REQUEST:
            incremental = bool(cursor.u8())
            x, y = cursor.u16(), cursor.u16()
            w, h = cursor.u16(), cursor.u16()
            return FramebufferUpdateRequest(incremental, Rect(x, y, w, h))
        if msg_type == MSG_KEY_EVENT:
            down = bool(cursor.u8())
            cursor.skip(2)
            return KeyEvent(down, cursor.u32())
        if msg_type == MSG_POINTER_EVENT:
            buttons = cursor.u8()
            return PointerEvent(buttons, cursor.u16(), cursor.u16())
        if msg_type == MSG_CLIENT_CUT_TEXT:
            cursor.skip(3)
            length = cursor.u32()
            return ClientCutText(cursor.take(length).decode("latin-1"))
        if msg_type == MSG_PING:
            cursor.skip(3)
            return Ping(cursor.u32())
        if msg_type == MSG_RESUME_SESSION:
            cursor.skip(3)
            return ResumeSession(cursor.u32())
        raise ProtocolError(f"unknown client message type {msg_type}")


class ServerMessageDecoder(_StreamDecoder):
    """Parses the server->client stream (runs inside the UniInt proxy).

    Needs the negotiated pixel format (and zlib state) to know rectangle
    payload sizes, hence it owns a :class:`~repro.uip.encodings.DecoderState`.
    """

    def __init__(self, state: enc.DecoderState) -> None:
        super().__init__()
        self.state = state

    def _parse_one(self, cursor: Cursor):
        msg_type = cursor.u8()
        if msg_type == MSG_FRAMEBUFFER_UPDATE:
            cursor.skip(1)
            count = cursor.u16()
            rects = []
            for _ in range(count):
                x, y = cursor.u16(), cursor.u16()
                w, h = cursor.u16(), cursor.u16()
                encoding = cursor.s32()
                rect = Rect(x, y, w, h)
                if encoding == enc.DESKTOP_SIZE:
                    payload: object = (w, h)
                elif encoding in enc.STATEFUL_ENCODINGS:
                    # The inflater is a persistent stream: it must only see
                    # each compressed byte once.  A partial message makes
                    # feed() retry this parse from the start, so inflation
                    # is deferred until the whole message is structurally
                    # complete (below).
                    length = cursor.u32()
                    payload = _DeferredStream(encoding, cursor.take(length))
                else:
                    payload = enc.decode_rect(self.state, cursor, w, h,
                                              encoding)
                rects.append(RectUpdate(rect, encoding, payload))
            rects = [self._inflate(update) for update in rects]
            return FramebufferUpdate(tuple(rects))
        if msg_type == MSG_BELL:
            return Bell()
        if msg_type == MSG_SERVER_CUT_TEXT:
            cursor.skip(3)
            length = cursor.u32()
            return ServerCutText(cursor.take(length).decode("latin-1"))
        if msg_type == MSG_PONG:
            cursor.skip(3)
            return Pong(cursor.u32())
        if msg_type == MSG_SESSION_GRANT:
            cursor.skip(3)
            return SessionGrant(cursor.u32())
        raise ProtocolError(f"unknown server message type {msg_type}")

    def _inflate(self, update: RectUpdate) -> RectUpdate:
        if not isinstance(update.payload, _DeferredStream):
            return update
        pf = self.state.pixel_format
        data = self.state.inflate(update.payload.data)
        if update.encoding == enc.ZRLE:
            packed = enc.decode_zrle_tiles(
                data, update.rect.w, update.rect.h, pf)
            return RectUpdate(update.rect, update.encoding, packed)
        expected = update.rect.w * update.rect.h * pf.bytes_per_pixel
        if len(data) != expected:
            raise ProtocolError(
                f"zlib rect inflated to {len(data)} bytes, expected {expected}"
            )
        packed = np.frombuffer(data, dtype=pf.dtype).reshape(
            update.rect.h, update.rect.w).copy()
        return RectUpdate(update.rect, update.encoding, packed)

"""Framebuffer-update encodings.

These are the compression schemes that make "bitmap images as universal
output events" viable on 2002-era device links (paper §2.1): a phone on a
9600 bps cellular link cannot take raw pixels, but control-panel GUIs are
flat-colour rectangles, which RRE and HEXTILE represent in a few dozen
bytes.

All encoders/decoders operate on *packed* pixel arrays — 2-D numpy arrays
whose dtype matches the negotiated :class:`~repro.graphics.PixelFormat`
(``pf.pack_array`` produces them).  Conversion to RGB happens at the edges.

Implemented encodings (numbered as in RFB for familiarity):

* ``RAW`` (0)      — pixels, row-major.
* ``COPYRECT`` (1) — source x, y within the remote framebuffer.
* ``RRE`` (2)      — background + coloured subrectangles (vertically merged
  row runs).
* ``HEXTILE`` (5)  — 16x16 tiles, persistent background/foreground,
  nibble-packed subrectangles; falls back to raw per tile.
* ``ZLIB`` (6)     — raw pixels through a per-session persistent zlib
  stream.
* ``DESKTOP_SIZE`` (-223) — pseudo-encoding announcing a framebuffer
  resize (used when the proxy switches output devices).
"""

from __future__ import annotations

import hashlib
import zlib
from collections import OrderedDict

import numpy as np

from repro.graphics.pixelformat import PixelFormat
from repro.uip.wire import Cursor, Writer
from repro.util.errors import ProtocolError

RAW = 0
COPYRECT = 1
RRE = 2
HEXTILE = 5
ZLIB = 6
DESKTOP_SIZE = -223

#: Encodings that carry pixel payloads (i.e. not pseudo-encodings).
PIXEL_ENCODINGS = (RAW, COPYRECT, RRE, HEXTILE, ZLIB)

_TILE = 16

# Hextile subencoding bits.
_HEX_RAW = 1
_HEX_BG = 2
_HEX_FG = 4
_HEX_SUBRECTS = 8
_HEX_COLOURED = 16


class EncodeCache:
    """Content-keyed LRU of encoded rect payloads.

    Keys are ``(encoding, pixel_format, shape, digest-of-pixels)``, so a hit
    is only possible when the exact same pixels are re-encoded with the same
    parameters — re-damaged-but-unchanged tiles (blinking widgets, toggling
    panels) skip the whole encode.  ZLIB payloads are never cached: the
    persistent deflate stream makes each encode position-dependent.

    Bounded both by entry count and by total payload bytes so one huge RAW
    frame cannot evict an entire panel's worth of small RRE payloads.
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 8 * 1024 * 1024) -> None:
        if max_entries < 1 or max_bytes < 1:
            raise ValueError("cache limits must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stored_bytes(self) -> int:
        return self._bytes

    def get(self, key: tuple) -> bytes | None:
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: tuple, payload: bytes) -> None:
        if len(payload) > self.max_bytes:
            return  # would evict everything for one entry
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        self._entries[key] = payload
        self._bytes += len(payload)
        while (len(self._entries) > self.max_entries
               or self._bytes > self.max_bytes):
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0


class EncoderState:
    """Per-session encoder state: pixel format, persistent zlib stream, and
    the content-keyed encode cache."""

    def __init__(self, pixel_format: PixelFormat,
                 cache: EncodeCache | None = None,
                 use_cache: bool = True) -> None:
        self.pixel_format = pixel_format
        self._deflater = zlib.compressobj(6)
        # Hextile background/foreground persist across tiles of one rect
        # only (reset per encode call) to keep rects independently decodable.
        self.cache = cache if cache is not None else (
            EncodeCache() if use_cache else None)
        self._scratch: np.ndarray | None = None

    def reset_pixel_format(self, pixel_format: PixelFormat) -> None:
        self.pixel_format = pixel_format

    def deflate(self, data: bytes) -> bytes:
        return self._deflater.compress(data) + self._deflater.flush(
            zlib.Z_SYNC_FLUSH
        )

    def contiguous(self, packed: np.ndarray) -> np.ndarray:
        """``packed`` as a C-contiguous array, reusing a scratch buffer.

        Cropped framebuffer views are rarely contiguous; copying them into
        a persistent per-session scratch avoids one fresh allocation per
        rect on the hot encode path.
        """
        if packed.flags.c_contiguous:
            return packed
        if (self._scratch is None or self._scratch.shape != packed.shape
                or self._scratch.dtype != packed.dtype):
            self._scratch = np.empty(packed.shape, dtype=packed.dtype)
        np.copyto(self._scratch, packed)
        return self._scratch

    def cache_key(self, packed: np.ndarray, encoding: int) -> tuple:
        """The content key ``encode_rect`` caches payloads under."""
        digest = hashlib.blake2b(
            self.contiguous(packed).data, digest_size=16).digest()
        return (encoding, self.pixel_format, packed.shape, digest)


class DecoderState:
    """Per-session decoder state mirroring :class:`EncoderState`."""

    def __init__(self, pixel_format: PixelFormat) -> None:
        self.pixel_format = pixel_format
        self._inflater = zlib.decompressobj()

    def reset_pixel_format(self, pixel_format: PixelFormat) -> None:
        self.pixel_format = pixel_format

    def inflate(self, data: bytes) -> bytes:
        return self._inflater.decompress(data)


# -- pixel helpers ---------------------------------------------------------


def _pixel_bytes(value: int, pf: PixelFormat) -> bytes:
    order = "big" if pf.big_endian else "little"
    return int(value).to_bytes(pf.bytes_per_pixel, order)


def _read_pixel(cursor: Cursor, pf: PixelFormat) -> int:
    order = "big" if pf.big_endian else "little"
    return int.from_bytes(cursor.take(pf.bytes_per_pixel), order)


def _most_common(values: np.ndarray) -> int:
    """The most frequent pixel value in a packed array."""
    uniques, counts = np.unique(values, return_counts=True)
    return int(uniques[np.argmax(counts)])


def _value_runs(row: np.ndarray, background: int):
    """Yield (start, end, value) runs of equal non-background pixels."""
    if len(row) == 0:
        return
    change = np.flatnonzero(row[1:] != row[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(row)]))
    for start, end in zip(starts, ends):
        value = int(row[start])
        if value != background:
            yield (int(start), int(end), value)


def _merged_subrects(packed: np.ndarray, background: int):
    """Vertically merge identical row runs into (x, y, w, h, value) rects."""
    active: dict[tuple[int, int, int], list[int]] = {}
    out: list[tuple[int, int, int, int, int]] = []
    height = packed.shape[0]
    for y in range(height):
        current = {}
        for start, end, value in _value_runs(packed[y], background):
            current[(start, end, value)] = True
        for key in list(active):
            if key not in current:
                y0, span = active.pop(key)
                out.append((key[0], y0, key[1] - key[0], span, key[2]))
        for key in current:
            if key in active:
                active[key][1] += 1
            else:
                active[key] = [y, 1]
    for key, (y0, span) in active.items():
        out.append((key[0], y0, key[1] - key[0], span, key[2]))
    out.sort(key=lambda r: (r[1], r[0]))
    return out


# -- RAW ------------------------------------------------------------------------


def encode_raw(packed: np.ndarray) -> bytes:
    return np.ascontiguousarray(packed).tobytes()


def decode_raw(cursor: Cursor, width: int, height: int,
               pf: PixelFormat) -> np.ndarray:
    data = cursor.take(width * height * pf.bytes_per_pixel)
    return np.frombuffer(data, dtype=pf.dtype).reshape(height, width).copy()


# -- COPYRECT ----------------------------------------------------------------------


def encode_copyrect(src_x: int, src_y: int) -> bytes:
    return Writer().u16(src_x).u16(src_y).getvalue()


def decode_copyrect(cursor: Cursor) -> tuple[int, int]:
    return (cursor.u16(), cursor.u16())


# -- RRE ---------------------------------------------------------------------------


def encode_rre(packed: np.ndarray, pf: PixelFormat) -> bytes:
    background = _most_common(packed)
    subrects = _merged_subrects(packed, background)
    writer = Writer()
    writer.u32(len(subrects))
    writer.raw(_pixel_bytes(background, pf))
    for x, y, w, h, value in subrects:
        writer.raw(_pixel_bytes(value, pf))
        writer.u16(x).u16(y).u16(w).u16(h)
    return writer.getvalue()


def decode_rre(cursor: Cursor, width: int, height: int,
               pf: PixelFormat) -> np.ndarray:
    count = cursor.u32()
    background = _read_pixel(cursor, pf)
    out = np.full((height, width), background, dtype=pf.dtype)
    for _ in range(count):
        value = _read_pixel(cursor, pf)
        x, y, w, h = cursor.u16(), cursor.u16(), cursor.u16(), cursor.u16()
        if x + w > width or y + h > height:
            raise ProtocolError(f"RRE subrect {(x, y, w, h)} exceeds "
                                f"{width}x{height}")
        out[y:y + h, x:x + w] = value
    return out


# -- HEXTILE -----------------------------------------------------------------------


def encode_hextile(packed: np.ndarray, pf: PixelFormat) -> bytes:
    height, width = packed.shape
    ps = pf.bytes_per_pixel
    writer = Writer()
    prev_bg: int | None = None
    prev_fg: int | None = None
    for ty in range(0, height, _TILE):
        for tx in range(0, width, _TILE):
            tile = packed[ty:ty + _TILE, tx:tx + _TILE]
            th, tw = tile.shape
            raw_size = 1 + th * tw * ps
            uniques = np.unique(tile)
            if len(uniques) == 1:
                value = int(uniques[0])
                if value == prev_bg:
                    writer.u8(0)
                else:
                    writer.u8(_HEX_BG).raw(_pixel_bytes(value, pf))
                    prev_bg = value
                continue
            background = _most_common(tile)
            subrects = _merged_subrects(tile, background)
            coloured = len(uniques) > 2
            subenc = _HEX_SUBRECTS
            body = Writer()
            if background != prev_bg:
                subenc |= _HEX_BG
                body.raw(_pixel_bytes(background, pf))
            if coloured:
                subenc |= _HEX_COLOURED
            else:
                foreground = int(uniques[uniques != background][0])
                if foreground != prev_fg:
                    subenc |= _HEX_FG
                    body.raw(_pixel_bytes(foreground, pf))
            body.u8(len(subrects))
            for x, y, w, h, value in subrects:
                if coloured:
                    body.raw(_pixel_bytes(value, pf))
                body.u8((x << 4) | y)
                body.u8(((w - 1) << 4) | (h - 1))
            encoded = body.getvalue()
            if 1 + len(encoded) >= raw_size or len(subrects) > 255:
                writer.u8(_HEX_RAW)
                writer.raw(np.ascontiguousarray(tile).tobytes())
                prev_bg = None  # raw tiles invalidate persistence
                prev_fg = None
            else:
                writer.u8(subenc)
                writer.raw(encoded)
                prev_bg = background
                if not coloured:
                    prev_fg = foreground
    return writer.getvalue()


def decode_hextile(cursor: Cursor, width: int, height: int,
                   pf: PixelFormat) -> np.ndarray:
    out = np.zeros((height, width), dtype=pf.dtype)
    background = 0
    foreground = 0
    for ty in range(0, height, _TILE):
        for tx in range(0, width, _TILE):
            tw = min(_TILE, width - tx)
            th = min(_TILE, height - ty)
            subenc = cursor.u8()
            if subenc & _HEX_RAW:
                data = cursor.take(tw * th * pf.bytes_per_pixel)
                out[ty:ty + th, tx:tx + tw] = np.frombuffer(
                    data, dtype=pf.dtype).reshape(th, tw)
                continue
            if subenc & _HEX_BG:
                background = _read_pixel(cursor, pf)
            if subenc & _HEX_FG:
                foreground = _read_pixel(cursor, pf)
            out[ty:ty + th, tx:tx + tw] = background
            if subenc & _HEX_SUBRECTS:
                count = cursor.u8()
                coloured = bool(subenc & _HEX_COLOURED)
                for _ in range(count):
                    value = (_read_pixel(cursor, pf) if coloured
                             else foreground)
                    xy = cursor.u8()
                    wh = cursor.u8()
                    sx, sy = xy >> 4, xy & 0x0F
                    sw, sh = (wh >> 4) + 1, (wh & 0x0F) + 1
                    if sx + sw > tw or sy + sh > th:
                        raise ProtocolError(
                            f"hextile subrect {(sx, sy, sw, sh)} exceeds "
                            f"tile {tw}x{th}"
                        )
                    out[ty + sy:ty + sy + sh, tx + sx:tx + sx + sw] = value
    return out


# -- ZLIB --------------------------------------------------------------------------


def encode_zlib(state: EncoderState, packed: np.ndarray) -> bytes:
    compressed = state.deflate(state.contiguous(packed).tobytes())
    return Writer().u32(len(compressed)).raw(compressed).getvalue()


def decode_zlib(state: DecoderState, cursor: Cursor, width: int,
                height: int, pf: PixelFormat) -> np.ndarray:
    length = cursor.u32()
    data = state.inflate(cursor.take(length))
    expected = width * height * pf.bytes_per_pixel
    if len(data) != expected:
        raise ProtocolError(
            f"zlib rect inflated to {len(data)} bytes, expected {expected}"
        )
    return np.frombuffer(data, dtype=pf.dtype).reshape(height, width).copy()


# -- top level ------------------------------------------------------------------------


def encode_rect(state: EncoderState, packed: np.ndarray,
                encoding: int) -> bytes:
    """Encode one rectangle's packed pixels as the given encoding's payload.

    For the stateless encodings (everything but ZLIB) the result is served
    from ``state.cache`` when the same pixels were encoded before — damage
    that re-exposes unchanged content costs one hash instead of a full
    encode.
    """
    if packed.ndim != 2:
        raise ProtocolError(f"packed array must be 2-D, got {packed.shape}")
    if encoding == ZLIB:
        # position-dependent persistent stream: never cached
        return encode_zlib(state, packed)
    cache = state.cache
    key = state.cache_key(packed, encoding) if cache is not None else None
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    if encoding == RAW:
        payload = encode_raw(state.contiguous(packed))
    elif encoding == RRE:
        payload = encode_rre(packed, state.pixel_format)
    elif encoding == HEXTILE:
        payload = encode_hextile(packed, state.pixel_format)
    else:
        raise ProtocolError(f"cannot encode pixels as encoding {encoding}")
    if cache is not None:
        cache.put(key, payload)
    return payload


def decode_rect(state: DecoderState, cursor: Cursor, width: int,
                height: int, encoding: int):
    """Decode one rectangle payload.

    Returns a packed (height, width) array, or an (src_x, src_y) tuple for
    COPYRECT.  Raises :class:`~repro.uip.wire.NeedMore` if the cursor runs
    out of bytes (the caller retries with a fuller buffer).
    """
    pf = state.pixel_format
    if encoding == RAW:
        return decode_raw(cursor, width, height, pf)
    if encoding == COPYRECT:
        return decode_copyrect(cursor)
    if encoding == RRE:
        return decode_rre(cursor, width, height, pf)
    if encoding == HEXTILE:
        return decode_hextile(cursor, width, height, pf)
    if encoding == ZLIB:
        return decode_zlib(state, cursor, width, height, pf)
    raise ProtocolError(f"cannot decode encoding {encoding}")


def best_encoding(state: EncoderState, packed: np.ndarray,
                  candidates: tuple[int, ...] = (RAW, RRE, HEXTILE)) -> int:
    """Pick the candidate producing the smallest payload.

    ZLIB is deliberately excluded by default: its persistent stream makes
    trial encodings destructive.  Used by the adaptive server mode and the
    encoding benchmarks (E1).
    """
    sizes = {}
    for encoding in candidates:
        if encoding == ZLIB:
            raise ProtocolError("best_encoding cannot trial ZLIB")
        sizes[encoding] = len(encode_rect(state, packed, encoding))
    return min(sizes, key=lambda e: (sizes[e], e))

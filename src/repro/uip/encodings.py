"""Framebuffer-update encodings.

These are the compression schemes that make "bitmap images as universal
output events" viable on 2002-era device links (paper §2.1): a phone on a
9600 bps cellular link cannot take raw pixels, but control-panel GUIs are
flat-colour rectangles, which RRE and HEXTILE represent in a few dozen
bytes.

All encoders/decoders operate on *packed* pixel arrays — 2-D numpy arrays
whose dtype matches the negotiated :class:`~repro.graphics.PixelFormat`
(``pf.pack_array`` produces them).  Conversion to RGB happens at the edges.

Implemented encodings (numbered as in RFB for familiarity):

* ``RAW`` (0)      — pixels, row-major.
* ``COPYRECT`` (1) — source x, y within the remote framebuffer.
* ``RRE`` (2)      — background + coloured subrectangles (vertically merged
  row runs).
* ``HEXTILE`` (5)  — 16x16 tiles, persistent background/foreground,
  nibble-packed subrectangles; falls back to raw per tile.
* ``ZLIB`` (6)     — raw pixels through a per-session persistent zlib
  stream.
* ``ZRLE`` (16)    — 64x64 tiles, each choosing the cheapest of solid /
  packed palette (1/2/4 bpp) / plain RLE / palette RLE / raw, the whole
  tile stream then deflated through the per-session persistent zlib
  stream.  The workhorse for the paper's 9600 bps phone leg.
* ``DESKTOP_SIZE`` (-223) — pseudo-encoding announcing a framebuffer
  resize (used when the proxy switches output devices).
"""

from __future__ import annotations

import hashlib
import time
import zlib
from collections import OrderedDict

import numpy as np

from repro.graphics.pixelformat import PixelFormat
from repro.uip.wire import Cursor, NeedMore, Writer
from repro.util.errors import ProtocolError

RAW = 0
COPYRECT = 1
RRE = 2
HEXTILE = 5
ZLIB = 6
ZRLE = 16
DESKTOP_SIZE = -223

#: Encodings that carry pixel payloads (i.e. not pseudo-encodings).
PIXEL_ENCODINGS = (RAW, COPYRECT, RRE, HEXTILE, ZLIB, ZRLE)

#: Encodings whose wire payload rides a persistent per-session zlib
#: stream: position-dependent, so the final payload is never cacheable
#: and real (non-trial) encodes advance the stream.
STATEFUL_ENCODINGS = frozenset((ZLIB, ZRLE))

#: Compression tiers: tier -> (zlib level, consider RLE subencodings).
#: Tier 1 is the default and matches the pre-tier behaviour (level 6);
#: tier 0 trades bytes for CPU on fast links, tier 2 squeezes hardest
#: for the phone/IrDA bearers.  ``repro.net.link.compression_tier`` maps
#: a LinkProfile onto this table.
COMPRESSION_TIERS = {
    0: (2, False),
    1: (6, True),
    2: (9, True),
}

_TILE = 16
_ZRLE_TILE = 64

# Hextile subencoding bits.
_HEX_RAW = 1
_HEX_BG = 2
_HEX_FG = 4
_HEX_SUBRECTS = 8
_HEX_COLOURED = 16


class EncodeCache:
    """Content-keyed LRU of encoded rect payloads.

    Keys are ``(encoding, pixel_format, shape, digest-of-pixels)`` — plus
    the compression tier for tiered codecs — so a hit is only possible when
    the exact same pixels are re-encoded with the same parameters:
    re-damaged-but-unchanged tiles (blinking widgets, toggling panels) skip
    the whole encode.  ZLIB payloads are never cached (the persistent
    deflate stream makes each encode position-dependent); ZRLE caches its
    position-*independent* tile stream and pays only the per-session
    deflate on a hit.

    Bounded both by entry count and by total payload bytes so one huge RAW
    frame cannot evict an entire panel's worth of small RRE payloads.
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 8 * 1024 * 1024) -> None:
        if max_entries < 1 or max_bytes < 1:
            raise ValueError("cache limits must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stored_bytes(self) -> int:
        return self._bytes

    def get(self, key: tuple) -> bytes | None:
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def peek(self, key: tuple) -> bytes | None:
        """Like :meth:`get` but stats-neutral and without LRU promotion.

        Trial encodes (adaptive mode's ``best_encoding``) use this so that
        probing candidates neither inflates the miss count nor reorders the
        eviction queue.
        """
        return self._entries.get(key)

    def put(self, key: tuple, payload: bytes) -> None:
        if len(payload) > self.max_bytes:
            return  # would evict everything for one entry
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        self._entries[key] = payload
        self._bytes += len(payload)
        while (len(self._entries) > self.max_entries
               or self._bytes > self.max_bytes):
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0


class EncoderState:
    """Per-session encoder state: pixel format, compression tier,
    persistent zlib stream, and the content-keyed encode cache."""

    def __init__(self, pixel_format: PixelFormat,
                 cache: EncodeCache | None = None,
                 use_cache: bool = True,
                 tier: int = 1) -> None:
        self.pixel_format = pixel_format
        if tier not in COMPRESSION_TIERS:
            raise ProtocolError(f"unknown compression tier {tier}")
        self.tier = tier
        self._deflater = zlib.compressobj(self.level)
        # True once the live stream has emitted bytes: the peer's
        # persistent inflater is then mid-stream and the deflate level is
        # pinned until the next renegotiation.
        self._deflate_started = False
        # Hextile background/foreground persist across tiles of one rect
        # only (reset per encode call) to keep rects independently decodable.
        self.cache = cache if cache is not None else (
            EncodeCache() if use_cache else None)
        self._scratch: np.ndarray | None = None

    @property
    def level(self) -> int:
        """The zlib level of this tier."""
        return COMPRESSION_TIERS[self.tier][0]

    @property
    def rle(self) -> bool:
        """Whether ZRLE considers the RLE subencodings at this tier."""
        return COMPRESSION_TIERS[self.tier][1]

    def set_tier(self, tier: int) -> None:
        """Adopt a compression tier (adaptive escalation path).

        The ZRLE subencoding search follows the new tier immediately; the
        deflate level can only follow while the live stream is untouched —
        once bytes have flowed, the peer's inflater is committed to the
        stream and the level stays pinned until :meth:`renegotiate`.
        """
        if tier not in COMPRESSION_TIERS:
            raise ProtocolError(f"unknown compression tier {tier}")
        if tier == self.tier:
            return
        self.tier = tier
        if not self._deflate_started:
            self._deflater = zlib.compressobj(self.level)

    def reset_pixel_format(self, pixel_format: PixelFormat) -> None:
        self.pixel_format = pixel_format

    def renegotiate(self, pixel_format: PixelFormat) -> None:
        """Adopt a renegotiated wire pixel format, keeping the encode cache.

        Cache keys include the pixel format, so payloads cached under the
        old format stay valid (and become live again if the client switches
        back); only the position-dependent zlib stream must restart.
        """
        self.pixel_format = pixel_format
        self._deflater = zlib.compressobj(self.level)
        self._deflate_started = False
        self._scratch = None

    def trial_deflater(self):
        """A throwaway clone of the live deflate stream.

        Trial encodes (``best_encoding`` sizing a stateful candidate)
        compress through the clone, so a losing trial never advances the
        live stream — the subsequent real encode is byte-identical to one
        with no trial at all.
        """
        return self._deflater.copy()

    def deflate(self, data: bytes, deflater=None) -> bytes:
        if deflater is None:
            deflater = self._deflater
            self._deflate_started = True
        return deflater.compress(data) + deflater.flush(zlib.Z_SYNC_FLUSH)

    def contiguous(self, packed: np.ndarray) -> np.ndarray:
        """``packed`` as a C-contiguous array, reusing a scratch buffer.

        Cropped framebuffer views are rarely contiguous; copying them into
        a persistent per-session scratch avoids one fresh allocation per
        rect on the hot encode path.
        """
        if packed.flags.c_contiguous:
            return packed
        if (self._scratch is None or self._scratch.shape != packed.shape
                or self._scratch.dtype != packed.dtype):
            self._scratch = np.empty(packed.shape, dtype=packed.dtype)
        np.copyto(self._scratch, packed)
        return self._scratch

    def cache_key(self, packed: np.ndarray, encoding: int) -> tuple:
        """The content key ``encode_rect`` caches payloads under.

        Tiered codecs get the tier in the key: a ZRLE tile stream built
        with tier-0 parameters (no RLE search) must never satisfy a tier-2
        session sharing the same cache.
        """
        digest = hashlib.blake2b(
            self.contiguous(packed).data, digest_size=16).digest()
        if encoding in STATEFUL_ENCODINGS:
            return (encoding, self.tier, self.pixel_format, packed.shape,
                    digest)
        return (encoding, self.pixel_format, packed.shape, digest)


class DecoderState:
    """Per-session decoder state mirroring :class:`EncoderState`."""

    def __init__(self, pixel_format: PixelFormat) -> None:
        self.pixel_format = pixel_format
        self._inflater = zlib.decompressobj()

    def reset_pixel_format(self, pixel_format: PixelFormat) -> None:
        self.pixel_format = pixel_format

    def inflate(self, data: bytes) -> bytes:
        return self._inflater.decompress(data)


# -- pixel helpers ---------------------------------------------------------


def _pixel_bytes(value: int, pf: PixelFormat) -> bytes:
    order = "big" if pf.big_endian else "little"
    return int(value).to_bytes(pf.bytes_per_pixel, order)


def _read_pixel(cursor: Cursor, pf: PixelFormat) -> int:
    order = "big" if pf.big_endian else "little"
    return int.from_bytes(cursor.take(pf.bytes_per_pixel), order)


def _native(values: np.ndarray) -> np.ndarray:
    """``values`` with native byte order (bincount/lexsort need it)."""
    if values.dtype.isnative:
        return values
    return values.astype(values.dtype.newbyteorder("="))


def _most_common(values: np.ndarray) -> int:
    """The most frequent pixel value in a packed array.

    8/16-bit formats take the O(n) ``bincount`` path (the bin table fits in
    cache); 32-bit values fall back to sorting via ``np.unique``.  Ties
    resolve to the smallest value either way.
    """
    flat = values.reshape(-1)
    if flat.dtype.itemsize == 1 or (flat.dtype.itemsize == 2
                                    and flat.size >= 2048):
        return int(np.argmax(np.bincount(_native(flat))))
    uniques, counts = np.unique(flat, return_counts=True)
    return int(uniques[np.argmax(counts)])


def _row_runs(packed: np.ndarray):
    """Every horizontal same-value run of a 2-D array in one pass.

    Returns ``(ys, x0s, x1s, values)`` arrays.  A single comparison over the
    flattened array finds all value changes; forcing a break at each row
    start keeps runs from spanning rows — no per-row Python loop.
    """
    height, width = packed.shape
    flat = packed.reshape(-1)
    breaks = np.empty(flat.size, dtype=bool)
    breaks[0] = True
    np.not_equal(flat[1:], flat[:-1], out=breaks[1:])
    breaks[::width] = True
    starts = np.flatnonzero(breaks)
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:]
    ends[-1] = flat.size
    ys, x0s = np.divmod(starts, width)
    return ys, x0s, ends - ys * width, flat[starts]


def _empty_subrects(dtype) -> tuple:
    zero = np.zeros(0, dtype=np.intp)
    return (zero, zero, zero, zero, np.zeros(0, dtype=dtype))


def _merged_subrect_arrays(packed: np.ndarray, background: int):
    """Vertically merge identical row runs of non-background pixels.

    Returns ``(x0s, ys, ws, hs, values)`` arrays, subrects ordered by
    (y, x).  Sorting runs by (column span, value, row) makes vertical
    neighbours adjacent, so merge boundaries fall out of one vectorised
    comparison instead of the per-row dict walk this replaces.
    """
    if packed.size == 0:
        return _empty_subrects(packed.dtype)
    ys, x0s, x1s, values = _row_runs(packed)
    keep = values != background
    ys, x0s, x1s, values = ys[keep], x0s[keep], x1s[keep], values[keep]
    if ys.size == 0:
        return _empty_subrects(packed.dtype)
    order = np.lexsort((ys, _native(values), x1s, x0s))
    ys, x0s, x1s, values = ys[order], x0s[order], x1s[order], values[order]
    heads = np.empty(ys.size, dtype=bool)
    heads[0] = True
    heads[1:] = ((x0s[1:] != x0s[:-1]) | (x1s[1:] != x1s[:-1])
                 | (values[1:] != values[:-1]) | (ys[1:] != ys[:-1] + 1))
    head_idx = np.flatnonzero(heads)
    spans = np.diff(np.append(head_idx, ys.size))
    out_order = np.lexsort((x0s[head_idx], ys[head_idx]))
    head_idx = head_idx[out_order]
    return (x0s[head_idx], ys[head_idx], x1s[head_idx] - x0s[head_idx],
            spans[out_order], values[head_idx])


# -- RAW ------------------------------------------------------------------------


def encode_raw(packed: np.ndarray) -> bytes:
    return np.ascontiguousarray(packed).tobytes()


def decode_raw(cursor: Cursor, width: int, height: int,
               pf: PixelFormat) -> np.ndarray:
    data = cursor.take(width * height * pf.bytes_per_pixel)
    return np.frombuffer(data, dtype=pf.dtype).reshape(height, width).copy()


# -- COPYRECT ----------------------------------------------------------------------


def encode_copyrect(src_x: int, src_y: int) -> bytes:
    return Writer().u16(src_x).u16(src_y).getvalue()


def decode_copyrect(cursor: Cursor) -> tuple[int, int]:
    return (cursor.u16(), cursor.u16())


# -- RRE ---------------------------------------------------------------------------


def _rre_subrect_block(x0s, ys, ws, hs, values, pf: PixelFormat) -> bytes:
    """All RRE subrect records serialised in one structured-array pass."""
    block = np.empty(len(x0s), dtype=np.dtype(
        [("v", pf.dtype.str), ("x", ">u2"), ("y", ">u2"),
         ("w", ">u2"), ("h", ">u2")]))
    block["v"] = values
    block["x"] = x0s
    block["y"] = ys
    block["w"] = ws
    block["h"] = hs
    return block.tobytes()


def encode_rre(packed: np.ndarray, pf: PixelFormat) -> bytes:
    background = _most_common(packed)
    x0s, ys, ws, hs, values = _merged_subrect_arrays(packed, background)
    writer = Writer()
    writer.u32(len(x0s))
    writer.raw(_pixel_bytes(background, pf))
    writer.raw(_rre_subrect_block(x0s, ys, ws, hs, values, pf))
    return writer.getvalue()


def decode_rre(cursor: Cursor, width: int, height: int,
               pf: PixelFormat) -> np.ndarray:
    count = cursor.u32()
    background = _read_pixel(cursor, pf)
    out = np.full((height, width), background, dtype=pf.dtype)
    for _ in range(count):
        value = _read_pixel(cursor, pf)
        x, y, w, h = cursor.u16(), cursor.u16(), cursor.u16(), cursor.u16()
        if x + w > width or y + h > height:
            raise ProtocolError(f"RRE subrect {(x, y, w, h)} exceeds "
                                f"{width}x{height}")
        out[y:y + h, x:x + w] = value
    return out


# -- HEXTILE -----------------------------------------------------------------------


def _tile_extrema(packed: np.ndarray,
                  tile: int = _TILE) -> tuple[np.ndarray, np.ndarray]:
    """Per-tile (min, max) over the whole rect in two reductions.

    Edge tiles are padded by edge replication, which only duplicates values
    already inside the same tile — so ``min == max`` classifies *solid*
    tiles exactly, including non-multiple-of-tile edges.  Hextile reduces
    at 16, ZRLE at 64.
    """
    height, width = packed.shape
    tiles_y = -(-height // tile)
    tiles_x = -(-width // tile)
    pad_h = tiles_y * tile - height
    pad_w = tiles_x * tile - width
    grid = packed
    if pad_h or pad_w:
        grid = np.pad(packed, ((0, pad_h), (0, pad_w)), mode="edge")
    blocks = grid.reshape(tiles_y, tile, tiles_x, tile)
    return blocks.min(axis=(1, 3)), blocks.max(axis=(1, 3))


def _hextile_subrect_block(x0s, ys, ws, hs, values, pf: PixelFormat,
                           coloured: bool) -> bytes:
    """One tile's nibble-packed subrect records, serialised in one pass."""
    if coloured:
        block = np.empty(len(x0s), dtype=np.dtype(
            [("v", pf.dtype.str), ("xy", "u1"), ("wh", "u1")]))
        block["v"] = values
    else:
        block = np.empty(len(x0s), dtype=np.dtype(
            [("xy", "u1"), ("wh", "u1")]))
    block["xy"] = (x0s << 4) | ys
    block["wh"] = ((ws - 1) << 4) | (hs - 1)
    return block.tobytes()


class _HextileBatch:
    """Every full 16x16 *mixed* tile's hextile ingredients, precomputed.

    One global sort finds each tile's most-common (background) value, one
    global run pass extracts every tile's merged subrects, and one
    structured-array pass serialises all subrect records — the serial
    emission loop then only slices.  Tie-breaks (smallest value wins the
    background; first subrect in (y, x) order donates the foreground)
    match the scalar path, so batch and fallback tiles are interchangeable.
    """

    __slots__ = ("stack", "backgrounds", "foregrounds", "coloured",
                 "counts", "offsets", "cblock", "mblock")

    def __init__(self, packed: np.ndarray, mixed_full: np.ndarray,
                 pf: PixelFormat) -> None:
        full_y, full_x = mixed_full.shape
        area = _TILE * _TILE
        blocks = packed[:full_y * _TILE, :full_x * _TILE].reshape(
            full_y, _TILE, full_x, _TILE).transpose(0, 2, 1, 3)
        self.stack = blocks[mixed_full]  # (n, 16, 16), scan order
        n = self.stack.shape[0]

        # background = per-tile most-common value: sort each tile's pixels,
        # then one run pass over the sorted block; stable lexsort by
        # (tile, length desc) leaves the smallest value first among ties.
        sflat = np.sort(self.stack.reshape(n, area), axis=1).reshape(-1)
        breaks = np.empty(n * area, dtype=bool)
        breaks[0] = True
        np.not_equal(sflat[1:], sflat[:-1], out=breaks[1:])
        breaks[::area] = True
        rstarts = np.flatnonzero(breaks)
        rlengths = np.diff(np.append(rstarts, n * area))
        rtiles = rstarts // area
        order = np.lexsort((-rlengths, rtiles))
        rt = rtiles[order]
        first = np.empty(order.size, dtype=bool)
        first[0] = True
        first[1:] = rt[1:] != rt[:-1]
        self.backgrounds = sflat[rstarts[order[first]]]

        # merged subrects of every tile in one run-extraction pass
        flat = self.stack.reshape(-1)
        breaks = np.empty(flat.size, dtype=bool)
        breaks[0] = True
        np.not_equal(flat[1:], flat[:-1], out=breaks[1:])
        breaks[::_TILE] = True
        starts = np.flatnonzero(breaks)
        ends = np.append(starts[1:], flat.size)
        values = flat[starts]
        tiles = starts // area
        keep = values != self.backgrounds[tiles]
        starts, ends, values, tiles = (starts[keep], ends[keep],
                                       values[keep], tiles[keep])
        x0s = starts & (_TILE - 1)
        x1s = ends - (starts - x0s)
        ys = (starts >> 4) & (_TILE - 1)
        order = np.lexsort((ys, _native(values), x1s, x0s, tiles))
        tiles, ys, x0s, x1s, values = (a[order] for a in
                                       (tiles, ys, x0s, x1s, values))
        heads = np.empty(tiles.size, dtype=bool)
        heads[0] = True
        heads[1:] = ((tiles[1:] != tiles[:-1]) | (x0s[1:] != x0s[:-1])
                     | (x1s[1:] != x1s[:-1]) | (values[1:] != values[:-1])
                     | (ys[1:] != ys[:-1] + 1))
        head_idx = np.flatnonzero(heads)
        spans = np.diff(np.append(head_idx, tiles.size))
        tiles, ys, x0s, x1s, values = (a[head_idx] for a in
                                       (tiles, ys, x0s, x1s, values))
        out_order = np.lexsort((x0s, ys, tiles))
        tiles, ys, x0s, values, spans = (a[out_order] for a in
                                         (tiles, ys, x0s, values, spans))
        ws = x1s[out_order] - x0s

        self.counts = np.bincount(tiles, minlength=n)
        self.offsets = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(self.counts, out=self.offsets[1:])
        first_vals = values[self.offsets[:-1]]
        differs = values != np.repeat(first_vals, self.counts)
        self.coloured = np.add.reduceat(differs, self.offsets[:-1]) > 0
        self.foregrounds = first_vals

        xy = ((x0s << 4) | ys).astype(np.uint8)
        wh = (((ws - 1) << 4) | (spans - 1)).astype(np.uint8)
        self.cblock = np.empty(values.size, dtype=np.dtype(
            [("v", pf.dtype.str), ("xy", "u1"), ("wh", "u1")]))
        self.cblock["v"] = values
        self.cblock["xy"] = xy
        self.cblock["wh"] = wh
        self.mblock = np.empty(values.size, dtype=np.dtype(
            [("xy", "u1"), ("wh", "u1")]))
        self.mblock["xy"] = xy
        self.mblock["wh"] = wh


def _hextile_emit(writer: Writer, pf: PixelFormat, raw_size: int,
                  background: int, foreground: int | None, count: int,
                  body: bytes, raw_bytes, prev_bg: int | None,
                  prev_fg: int | None) -> tuple[int | None, int | None]:
    """Emit one mixed tile (shared by the batch and fallback paths).

    Returns the updated (prev_bg, prev_fg) persistence pair.  ``raw_bytes``
    is called lazily — raw fallback is the rare case on panel content.
    """
    subenc = _HEX_SUBRECTS
    head = b""
    if background != prev_bg:
        subenc |= _HEX_BG
        head += _pixel_bytes(background, pf)
    if foreground is None:
        subenc |= _HEX_COLOURED
    elif foreground != prev_fg:
        subenc |= _HEX_FG
        head += _pixel_bytes(foreground, pf)
    if 2 + len(head) + len(body) >= raw_size or count > 255:
        writer.u8(_HEX_RAW)
        writer.raw(raw_bytes())
        return (None, None)  # raw tiles invalidate persistence
    writer.u8(subenc)
    writer.raw(head)
    writer.u8(count)
    writer.raw(body)
    return (background, foreground if foreground is not None else prev_fg)


def encode_hextile(packed: np.ndarray, pf: PixelFormat) -> bytes:
    height, width = packed.shape
    if packed.size == 0:
        return b""
    ps = pf.bytes_per_pixel
    # Batch-classify solid tiles up front: on panel workloads most tiles
    # are flat, and each costs O(1) here instead of an np.unique call.
    tile_min, tile_max = _tile_extrema(packed)
    solid = tile_min == tile_max
    full_y, full_x = height // _TILE, width // _TILE
    mixed_full = ~solid[:full_y, :full_x]
    batch = (_HextileBatch(packed, mixed_full, pf) if mixed_full.any()
             else None)
    writer = Writer()
    prev_bg: int | None = None
    prev_fg: int | None = None
    bi = 0  # batch cursor; the scan order below matches the batch gather
    for tyi, ty in enumerate(range(0, height, _TILE)):
        for txi, tx in enumerate(range(0, width, _TILE)):
            if solid[tyi, txi]:
                value = int(tile_min[tyi, txi])
                if value == prev_bg:
                    writer.u8(0)
                else:
                    writer.u8(_HEX_BG).raw(_pixel_bytes(value, pf))
                    prev_bg = value
                continue
            if tyi < full_y and txi < full_x:
                s, e = batch.offsets[bi], batch.offsets[bi + 1]
                coloured = bool(batch.coloured[bi])
                body = (batch.cblock if coloured
                        else batch.mblock)[s:e].tobytes()
                stack_tile = batch.stack[bi]
                prev_bg, prev_fg = _hextile_emit(
                    writer, pf, 1 + _TILE * _TILE * ps,
                    int(batch.backgrounds[bi]),
                    None if coloured else int(batch.foregrounds[bi]),
                    int(batch.counts[bi]), body, stack_tile.tobytes,
                    prev_bg, prev_fg)
                bi += 1
                continue
            # edge tile (non-multiple-of-16 rect): scalar fallback
            tile = packed[ty:ty + _TILE, tx:tx + _TILE]
            th, tw = tile.shape
            background = _most_common(tile)
            x0s, ys, ws, hs, values = _merged_subrect_arrays(tile, background)
            coloured = bool((values != values[0]).any())
            body = _hextile_subrect_block(x0s, ys, ws, hs, values, pf,
                                          coloured)
            prev_bg, prev_fg = _hextile_emit(
                writer, pf, 1 + th * tw * ps, background,
                None if coloured else int(values[0]), len(x0s), body,
                lambda t=tile: np.ascontiguousarray(t).tobytes(),
                prev_bg, prev_fg)
    return writer.getvalue()


def decode_hextile(cursor: Cursor, width: int, height: int,
                   pf: PixelFormat) -> np.ndarray:
    out = np.zeros((height, width), dtype=pf.dtype)
    background = 0
    foreground = 0
    for ty in range(0, height, _TILE):
        for tx in range(0, width, _TILE):
            tw = min(_TILE, width - tx)
            th = min(_TILE, height - ty)
            subenc = cursor.u8()
            if subenc & _HEX_RAW:
                data = cursor.take(tw * th * pf.bytes_per_pixel)
                out[ty:ty + th, tx:tx + tw] = np.frombuffer(
                    data, dtype=pf.dtype).reshape(th, tw)
                continue
            if subenc & _HEX_BG:
                background = _read_pixel(cursor, pf)
            if subenc & _HEX_FG:
                foreground = _read_pixel(cursor, pf)
            out[ty:ty + th, tx:tx + tw] = background
            if subenc & _HEX_SUBRECTS:
                count = cursor.u8()
                coloured = bool(subenc & _HEX_COLOURED)
                for _ in range(count):
                    value = (_read_pixel(cursor, pf) if coloured
                             else foreground)
                    xy = cursor.u8()
                    wh = cursor.u8()
                    sx, sy = xy >> 4, xy & 0x0F
                    sw, sh = (wh >> 4) + 1, (wh & 0x0F) + 1
                    if sx + sw > tw or sy + sh > th:
                        raise ProtocolError(
                            f"hextile subrect {(sx, sy, sw, sh)} exceeds "
                            f"tile {tw}x{th}"
                        )
                    out[ty + sy:ty + sy + sh, tx + sx:tx + sx + sw] = value
    return out


# -- ZLIB --------------------------------------------------------------------------


def encode_zlib(state: EncoderState, packed: np.ndarray) -> bytes:
    compressed = state.deflate(state.contiguous(packed).tobytes())
    return Writer().u32(len(compressed)).raw(compressed).getvalue()


def decode_zlib(state: DecoderState, cursor: Cursor, width: int,
                height: int, pf: PixelFormat) -> np.ndarray:
    length = cursor.u32()
    data = state.inflate(cursor.take(length))
    expected = width * height * pf.bytes_per_pixel
    if len(data) != expected:
        raise ProtocolError(
            f"zlib rect inflated to {len(data)} bytes, expected {expected}"
        )
    return np.frombuffer(data, dtype=pf.dtype).reshape(height, width).copy()


# -- ZRLE --------------------------------------------------------------------------

# ZRLE subencoding bytes (per 64x64 tile).  2..16 is a packed palette of
# that size; 130..255 is palette RLE with palette size (byte - 128).
_ZRLE_RAW = 0
_ZRLE_SOLID = 1
_ZRLE_PLAIN_RLE = 128


def _zrle_bpp(palette_size: int) -> int:
    """Packed-palette bits per index."""
    if palette_size <= 2:
        return 1
    if palette_size <= 4:
        return 2
    return 4


def _read_run_length(cursor: Cursor) -> int:
    length = 1
    byte = cursor.u8()
    while byte == 255:
        length += 255
        byte = cursor.u8()
    return length + byte


def _flat_runs(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(values, lengths) of every same-value run in raster order.

    Unlike :func:`_row_runs`, runs cross row boundaries — ZRLE RLE is
    defined over the tile's flattened pixel sequence.
    """
    breaks = np.empty(flat.size, dtype=bool)
    breaks[0] = True
    np.not_equal(flat[1:], flat[:-1], out=breaks[1:])
    starts = np.flatnonzero(breaks)
    lengths = np.diff(np.append(starts, flat.size))
    return flat[starts], lengths


def _zrle_pack_indices(idx: np.ndarray, palette_size: int) -> bytes:
    """Palette indices as a packed bitfield: MSB-first, rows byte-padded."""
    height, width = idx.shape
    if palette_size <= 2:
        return np.packbits(idx.astype(np.uint8), axis=1).tobytes()
    if palette_size <= 4:
        pad = -width % 4
        if pad:
            idx = np.pad(idx, ((0, 0), (0, pad)))
        packed = ((idx[:, 0::4] << 6) | (idx[:, 1::4] << 4)
                  | (idx[:, 2::4] << 2) | idx[:, 3::4])
        return packed.astype(np.uint8).tobytes()
    pad = -width % 2
    if pad:
        idx = np.pad(idx, ((0, 0), (0, pad)))
    return ((idx[:, 0::2] << 4) | idx[:, 1::2]).astype(np.uint8).tobytes()


def _zrle_unpack_indices(cursor: Cursor, height: int, width: int,
                         palette_size: int) -> np.ndarray:
    bpp = _zrle_bpp(palette_size)
    row_bytes = (width * bpp + 7) // 8
    data = np.frombuffer(cursor.take(height * row_bytes),
                         dtype=np.uint8).reshape(height, row_bytes)
    if bpp == 1:
        return np.unpackbits(data, axis=1)[:, :width]
    idx = np.empty((height, row_bytes * (8 // bpp)), dtype=np.uint8)
    if bpp == 2:
        idx[:, 0::4] = data >> 6
        idx[:, 1::4] = (data >> 4) & 3
        idx[:, 2::4] = (data >> 2) & 3
        idx[:, 3::4] = data & 3
    else:
        idx[:, 0::2] = data >> 4
        idx[:, 1::2] = data & 0x0F
    return idx[:, :width]


def _zrle_encode_tile(out: bytearray, tile: np.ndarray, pf: PixelFormat,
                      rle: bool) -> None:
    """Append one tile's cheapest subencoding to the stream.

    Candidate sizes are computed arithmetically *before* any body is
    built, so noise tiles go straight to raw without ever materialising
    an RLE body, and panel tiles build exactly one representation.
    """
    th, tw = tile.shape
    ps = pf.bytes_per_pixel
    area = th * tw
    flat = tile.reshape(-1)
    # The run decomposition doubles as cheap palette extraction: every
    # value appears in some run, and there are far fewer runs than pixels
    # on panel content, so unique(run_values) beats unique(flat).
    run_values, run_lengths = _flat_runs(flat)
    uniques = np.unique(run_values)
    palette_size = int(uniques.size)
    if palette_size == 1:
        out.append(_ZRLE_SOLID)
        out += _pixel_bytes(int(uniques[0]), pf)
        return
    best = _ZRLE_RAW
    best_size = area * ps
    if palette_size <= 16:
        packed_size = (palette_size * ps
                       + th * ((tw * _zrle_bpp(palette_size) + 7) // 8))
        if packed_size < best_size:
            best, best_size = palette_size, packed_size
    extra_ff = tail = None
    if rle:
        extra_ff, tail = np.divmod(run_lengths - 1, 255)
        length_bytes = extra_ff + 1
        plain_size = run_values.size * ps + int(length_bytes.sum())
        if plain_size < best_size:
            best, best_size = _ZRLE_PLAIN_RLE, plain_size
        if palette_size <= 127:
            pal_size = palette_size * ps + int(
                np.where(run_lengths == 1, 1, 1 + length_bytes).sum())
            if pal_size < best_size:
                best, best_size = _ZRLE_PLAIN_RLE + palette_size, pal_size
    if best == _ZRLE_RAW:
        out.append(_ZRLE_RAW)
        out += np.ascontiguousarray(tile).tobytes()
    elif best <= 16:  # packed palette
        out.append(palette_size)
        out += uniques.tobytes()
        idx = np.searchsorted(uniques, flat).reshape(th, tw)
        out += _zrle_pack_indices(idx, palette_size)
    elif best == _ZRLE_PLAIN_RLE:
        # Scatter-build the body: per run, ps value bytes then the run
        # length as extra_ff 0xFF bytes and a final byte < 255.  The
        # buffer starts all-0xFF so only first/last positions need writes.
        out.append(_ZRLE_PLAIN_RLE)
        nbytes = ps + extra_ff + 1
        ends = np.cumsum(nbytes)
        starts = ends - nbytes
        buf = np.full(int(ends[-1]), 0xFF, dtype=np.uint8)
        value_bytes = np.frombuffer(run_values.tobytes(),
                                    dtype=np.uint8).reshape(-1, ps)
        for k in range(ps):
            buf[starts + k] = value_bytes[:, k]
        buf[ends - 1] = tail
        out += buf.tobytes()
    else:  # palette RLE
        out.append(best)
        out += uniques.tobytes()
        indices = np.searchsorted(uniques, run_values)
        singles = run_lengths == 1
        nbytes = np.where(singles, 1, extra_ff + 2)
        ends = np.cumsum(nbytes)
        starts = ends - nbytes
        buf = np.full(int(ends[-1]), 0xFF, dtype=np.uint8)
        buf[starts] = np.where(singles, indices, indices | 0x80)
        multi = ~singles
        buf[ends[multi] - 1] = tail[multi]
        out += buf.tobytes()


def _zrle_decode_tile(cursor: Cursor, th: int, tw: int,
                      pf: PixelFormat) -> np.ndarray:
    ps = pf.bytes_per_pixel
    area = th * tw
    subenc = cursor.u8()
    if subenc == _ZRLE_RAW:
        return np.frombuffer(cursor.take(area * ps),
                             dtype=pf.dtype).reshape(th, tw)
    if subenc == _ZRLE_SOLID:
        return np.full((th, tw), _read_pixel(cursor, pf), dtype=pf.dtype)
    if 2 <= subenc <= 16:
        palette = np.frombuffer(cursor.take(subenc * ps), dtype=pf.dtype)
        idx = _zrle_unpack_indices(cursor, th, tw, subenc)
        if int(idx.max(initial=0)) >= subenc:
            raise ProtocolError(f"ZRLE palette index out of range "
                                f"(palette size {subenc})")
        return palette[idx]
    if subenc == _ZRLE_PLAIN_RLE:
        flat = np.empty(area, dtype=pf.dtype)
        filled = 0
        while filled < area:
            value = _read_pixel(cursor, pf)
            length = _read_run_length(cursor)
            if filled + length > area:
                raise ProtocolError("ZRLE run exceeds tile")
            flat[filled:filled + length] = value
            filled += length
        return flat.reshape(th, tw)
    if subenc >= _ZRLE_PLAIN_RLE + 2:
        palette_size = subenc - _ZRLE_PLAIN_RLE
        palette = np.frombuffer(cursor.take(palette_size * ps),
                                dtype=pf.dtype)
        flat = np.empty(area, dtype=pf.dtype)
        filled = 0
        while filled < area:
            byte = cursor.u8()
            index = byte & 0x7F
            if index >= palette_size:
                raise ProtocolError(f"ZRLE palette index {index} out of "
                                    f"range (palette size {palette_size})")
            length = _read_run_length(cursor) if byte & 0x80 else 1
            if filled + length > area:
                raise ProtocolError("ZRLE run exceeds tile")
            flat[filled:filled + length] = palette[index]
            filled += length
        return flat.reshape(th, tw)
    raise ProtocolError(f"invalid ZRLE subencoding {subenc}")


def encode_zrle_tiles(packed: np.ndarray, pf: PixelFormat,
                      rle: bool = True) -> bytes:
    """The position-independent ZRLE tile stream (pre-deflate).

    This is the expensive, *cacheable* half of a ZRLE encode: it depends
    only on (pixels, pixel format, rle flag), so sessions sharing an
    :class:`EncodeCache` share it and pay only their own deflate.
    """
    height, width = packed.shape
    out = bytearray()
    if packed.size == 0:
        return b""
    # Batch-classify solid tiles up front (panel workloads are mostly
    # flat): each costs one append here instead of an np.unique call.
    tile_min, tile_max = _tile_extrema(packed, _ZRLE_TILE)
    solid = tile_min == tile_max
    for tyi, ty in enumerate(range(0, height, _ZRLE_TILE)):
        for txi, tx in enumerate(range(0, width, _ZRLE_TILE)):
            if solid[tyi, txi]:
                out.append(_ZRLE_SOLID)
                out += _pixel_bytes(int(tile_min[tyi, txi]), pf)
                continue
            _zrle_encode_tile(
                out, packed[ty:ty + _ZRLE_TILE, tx:tx + _ZRLE_TILE], pf, rle)
    return bytes(out)


def decode_zrle_tiles(data: bytes, width: int, height: int,
                      pf: PixelFormat) -> np.ndarray:
    """Decode a fully *inflated* ZRLE tile stream back to packed pixels."""
    out = np.zeros((height, width), dtype=pf.dtype)
    cursor = Cursor(data)
    try:
        for ty in range(0, height, _ZRLE_TILE):
            for tx in range(0, width, _ZRLE_TILE):
                th = min(_ZRLE_TILE, height - ty)
                tw = min(_ZRLE_TILE, width - tx)
                out[ty:ty + th, tx:tx + tw] = _zrle_decode_tile(
                    cursor, th, tw, pf)
    except NeedMore as exc:
        raise ProtocolError("truncated ZRLE tile stream") from exc
    if cursor.pos != len(data):
        raise ProtocolError(
            f"{len(data) - cursor.pos} trailing bytes after ZRLE tiles")
    return out


def encode_zrle(state: EncoderState, packed: np.ndarray,
                deflater=None) -> bytes:
    tiles = encode_zrle_tiles(state.contiguous(packed), state.pixel_format,
                              rle=state.rle)
    compressed = state.deflate(tiles, deflater)
    return Writer().u32(len(compressed)).raw(compressed).getvalue()


def decode_zrle(state: DecoderState, cursor: Cursor, width: int,
                height: int, pf: PixelFormat) -> np.ndarray:
    length = cursor.u32()
    data = state.inflate(cursor.take(length))
    return decode_zrle_tiles(data, width, height, pf)


# -- top level ------------------------------------------------------------------------


def encode_rect(state: EncoderState, packed: np.ndarray,
                encoding: int, *, trial: bool = False) -> bytes:
    """Encode one rectangle's packed pixels as the given encoding's payload.

    For the stateless encodings (everything but ZLIB) the result is served
    from ``state.cache`` when the same pixels were encoded before — damage
    that re-exposes unchanged content costs one hash instead of a full
    encode.

    ``trial=True`` marks a speculative encode (adaptive mode sizing the
    candidates): the cache is consulted stats-neutrally and losing payloads
    are never stored, so trials cannot evict live entries or skew hit/miss
    counters.  For the stateful encodings (ZLIB, ZRLE) a trial compresses
    through a throwaway clone of the live stream, so the real encode after
    a trial is byte-identical to one with no trial at all.
    """
    if packed.ndim != 2:
        raise ProtocolError(f"packed array must be 2-D, got {packed.shape}")
    if encoding == ZLIB:
        # position-dependent persistent stream: the payload is never cached
        deflater = state.trial_deflater() if trial else None
        compressed = state.deflate(state.contiguous(packed).tobytes(),
                                   deflater)
        return Writer().u32(len(compressed)).raw(compressed).getvalue()
    if encoding == ZRLE:
        # The tile stream is position-independent and cached (key includes
        # the tier); only the final deflate is per-session and per-position.
        cache = state.cache
        key = state.cache_key(packed, ZRLE) if cache is not None else None
        tiles = None
        if cache is not None:
            tiles = cache.peek(key) if trial else cache.get(key)
        if tiles is None:
            tiles = encode_zrle_tiles(state.contiguous(packed),
                                      state.pixel_format, rle=state.rle)
            if cache is not None and not trial:
                cache.put(key, tiles)
        deflater = state.trial_deflater() if trial else None
        compressed = state.deflate(tiles, deflater)
        return Writer().u32(len(compressed)).raw(compressed).getvalue()
    cache = state.cache
    key = state.cache_key(packed, encoding) if cache is not None else None
    if cache is not None:
        cached = cache.peek(key) if trial else cache.get(key)
        if cached is not None:
            return cached
    if encoding == RAW:
        payload = encode_raw(state.contiguous(packed))
    elif encoding == RRE:
        payload = encode_rre(packed, state.pixel_format)
    elif encoding == HEXTILE:
        payload = encode_hextile(packed, state.pixel_format)
    else:
        raise ProtocolError(f"cannot encode pixels as encoding {encoding}")
    if cache is not None and not trial:
        cache.put(key, payload)
    return payload


def decode_rect(state: DecoderState, cursor: Cursor, width: int,
                height: int, encoding: int):
    """Decode one rectangle payload.

    Returns a packed (height, width) array, or an (src_x, src_y) tuple for
    COPYRECT.  Raises :class:`~repro.uip.wire.NeedMore` if the cursor runs
    out of bytes (the caller retries with a fuller buffer).
    """
    pf = state.pixel_format
    if encoding == RAW:
        return decode_raw(cursor, width, height, pf)
    if encoding == COPYRECT:
        return decode_copyrect(cursor)
    if encoding == RRE:
        return decode_rre(cursor, width, height, pf)
    if encoding == HEXTILE:
        return decode_hextile(cursor, width, height, pf)
    if encoding == ZLIB:
        return decode_zlib(state, cursor, width, height, pf)
    if encoding == ZRLE:
        return decode_zrle(state, cursor, width, height, pf)
    raise ProtocolError(f"cannot decode encoding {encoding}")


def best_encoding(state: EncoderState, packed: np.ndarray,
                  candidates: tuple[int, ...] = (RAW, RRE, HEXTILE), *,
                  profile=None, encode_costs: dict | None = None) -> int:
    """Pick the best candidate encoding for this rect.

    Without ``profile`` the smallest payload wins (ties resolve to the
    lowest encoding number) — the legacy byte-greedy mode.  With a
    ``profile`` (anything with ``transmission_time(nbytes)``, normally a
    :class:`~repro.net.link.LinkProfile`) candidates are scored by a cost
    model: estimated bearer seconds for the payload plus the measured
    per-candidate encode seconds; ties resolve to candidate order, so the
    caller's preference seeding decides between equivalent codecs.

    ``encode_costs`` is a caller-owned ``{encoding: seconds}`` dict; when
    passed, every trial is timed and folded in as an exponential moving
    average, so the cost model learns each codec's real CPU price on this
    session's content.

    Stateful codecs (ZLIB, ZRLE) are sized on a throwaway clone of the
    live deflate stream, so trialling them is non-destructive.  Candidates
    are sized as no-store *trials*; only a stateless winner's payload
    enters the cache (a stateful winner's payload is position-dependent —
    its real encode re-populates the ZRLE tile-stream cache instead).
    """
    payloads = {}
    for encoding in candidates:
        began = time.perf_counter() if encode_costs is not None else 0.0
        payloads[encoding] = encode_rect(state, packed, encoding, trial=True)
        if encode_costs is not None:
            elapsed = time.perf_counter() - began
            prior = encode_costs.get(encoding)
            encode_costs[encoding] = (elapsed if prior is None
                                      else 0.7 * prior + 0.3 * elapsed)
    if profile is None:
        winner = min(payloads, key=lambda e: (len(payloads[e]), e))
    else:
        costs = encode_costs if encode_costs is not None else {}
        order = {e: i for i, e in enumerate(candidates)}
        winner = min(payloads, key=lambda e: (
            profile.transmission_time(len(payloads[e])) + costs.get(e, 0.0),
            order[e]))
    if winner not in STATEFUL_ENCODINGS and state.cache is not None:
        state.cache.put(state.cache_key(packed, winner), payloads[winner])
    return winner

"""UIP connection handshake.

Mirrors the RFB opening sequence the paper's thin-client systems use:

1. Server sends its protocol version string; client replies with the
   version it will speak (must not exceed the server's).
2. Server offers security types; client picks one.  ``NONE`` or a
   shared-secret challenge (server sends a 16-byte nonce, client answers
   with SHA-256(secret || nonce)).
3. Client sends ClientInit (``shared`` flag); server answers ServerInit:
   framebuffer width, height, native pixel format and the desktop name.

Both ends are implemented as sans-io state machines: feed received bytes
in, collect bytes to send out.  That keeps them independent of transport
and trivially testable.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.graphics.pixelformat import PixelFormat
from repro.uip.wire import Cursor, NeedMore, Writer
from repro.util.errors import ProtocolError

#: The newest dialect this implementation speaks.  001.001 added the
#: ZRLE encoding; both ends negotiate down to the older peer's version
#: (RFB-style), so 001.000 peers interoperate and simply never see ZRLE.
PROTOCOL_VERSION = b"UIP 001.001\n"
_VERSION_LEN = len(PROTOCOL_VERSION)

#: The version this codebase spoke before ZRLE existed.
VERSION_1_0 = (1, 0)
#: ZRLE (and nothing else, yet) requires at least this negotiated version.
VERSION_1_1 = (1, 1)

_VERSION_RE = re.compile(rb"UIP (\d{3})\.(\d{3})\n")


def _parse_version(raw: bytes) -> Optional[tuple[int, int]]:
    match = _VERSION_RE.fullmatch(raw)
    if match is None:
        return None
    return (int(match.group(1)), int(match.group(2)))


def _version_bytes(version: tuple[int, int]) -> bytes:
    return b"UIP %03d.%03d\n" % version

SECURITY_NONE = 1
SECURITY_SHARED_SECRET = 2

_CHALLENGE_LEN = 16
_RESPONSE_LEN = 32  # sha256 digest

_STATUS_OK = 0
_STATUS_FAILED = 1

#: Upper bound on the ServerInit desktop-name length.  A corrupted or
#: hostile length prefix must fail the handshake, not commit the client
#: to buffering gigabytes while it "waits for the rest of the name".
MAX_NAME_LEN = 4096


def _secret_response(secret: str, challenge: bytes) -> bytes:
    return hashlib.sha256(secret.encode("utf-8") + challenge).digest()


@dataclass
class HandshakeResult:
    """Outcome of a completed handshake (server fields on both sides)."""

    width: int
    height: int
    pixel_format: PixelFormat
    name: str
    shared: bool
    #: The protocol dialect both ends agreed on: min(client, server).
    #: Gates version-dependent encodings (ZRLE needs >= (1, 1)).
    version: tuple[int, int] = VERSION_1_0


class _HandshakeBase:
    """Common sans-io plumbing: buffered input, queued output, result."""

    def __init__(self) -> None:
        self._in = bytearray()
        self._out = bytearray()
        self.result: Optional[HandshakeResult] = None
        self.failed: Optional[str] = None
        self._state: Callable[[Cursor], bool] = self._start

    @property
    def done(self) -> bool:
        return self.result is not None

    def outgoing(self) -> bytes:
        """Bytes this side wants to transmit (drains the queue)."""
        data = bytes(self._out)
        del self._out[:]
        return data

    def feed(self, data: bytes) -> None:
        """Absorb received bytes, advancing the state machine."""
        if self.failed is not None:
            raise ProtocolError(f"handshake already failed: {self.failed}")
        self._in.extend(data)
        while not self.done and self.failed is None:
            cursor = Cursor(bytes(self._in))
            try:
                advanced = self._state(cursor)
            except NeedMore:
                return
            del self._in[:cursor.pos]
            if not advanced:
                return

    def leftover(self) -> bytes:
        """Bytes received beyond the handshake (start of the message stream)."""
        data = bytes(self._in)
        del self._in[:]
        return data

    def _fail(self, reason: str) -> bool:
        self.failed = reason
        return False

    def _start(self, cursor: Cursor) -> bool:
        raise NotImplementedError


class ServerHandshake(_HandshakeBase):
    """Server side: owns the framebuffer geometry and optional secret."""

    def __init__(self, width: int, height: int, pixel_format: PixelFormat,
                 name: str, secret: Optional[str] = None,
                 challenge: bytes = b"\xA5" * _CHALLENGE_LEN) -> None:
        super().__init__()
        self.width = width
        self.height = height
        self.pixel_format = pixel_format
        self.name = name
        self._secret = secret
        if len(challenge) != _CHALLENGE_LEN:
            raise ProtocolError(f"challenge must be {_CHALLENGE_LEN} bytes")
        self._challenge = challenge
        #: The dialect the client replied with (== the negotiated one).
        self.version = VERSION_1_0
        self._out.extend(PROTOCOL_VERSION)
        security = (SECURITY_SHARED_SECRET if secret is not None
                    else SECURITY_NONE)
        self._out.extend(Writer().u8(1).u8(security).getvalue())

    def _start(self, cursor: Cursor) -> bool:
        raw = cursor.take(_VERSION_LEN)
        version = _parse_version(raw)
        if version is None:
            return self._fail(f"client version {raw!r} unsupported")
        if not VERSION_1_0 <= version <= _parse_version(PROTOCOL_VERSION):
            # The client must reply with a version at or below ours; a
            # well-behaved one already clamped (see ClientHandshake).
            return self._fail(f"client version {raw!r} unsupported")
        self.version = version
        self._state = self._security_choice
        return True

    def _security_choice(self, cursor: Cursor) -> bool:
        choice = cursor.u8()
        if self._secret is not None:
            if choice != SECURITY_SHARED_SECRET:
                return self._fail(f"client chose security {choice}, "
                                  f"server requires shared secret")
            self._out.extend(self._challenge)
            self._state = self._secret_answer
            return True
        if choice != SECURITY_NONE:
            return self._fail(f"client chose unknown security {choice}")
        self._out.extend(Writer().u32(_STATUS_OK).getvalue())
        self._state = self._client_init
        return True

    def _secret_answer(self, cursor: Cursor) -> bool:
        answer = cursor.take(_RESPONSE_LEN)
        expected = _secret_response(self._secret or "", self._challenge)
        if answer != expected:
            self._out.extend(Writer().u32(_STATUS_FAILED).getvalue())
            return self._fail("shared secret mismatch")
        self._out.extend(Writer().u32(_STATUS_OK).getvalue())
        self._state = self._client_init
        return True

    def _client_init(self, cursor: Cursor) -> bool:
        shared = bool(cursor.u8())
        name_bytes = self.name.encode("latin-1")
        self._out.extend(
            Writer().u16(self.width).u16(self.height)
            .raw(self.pixel_format.encode())
            .u32(len(name_bytes)).raw(name_bytes).getvalue()
        )
        self.result = HandshakeResult(self.width, self.height,
                                      self.pixel_format, self.name, shared,
                                      version=self.version)
        return False


class ClientHandshake(_HandshakeBase):
    """Client side (lives in the UniInt proxy)."""

    def __init__(self, secret: Optional[str] = None,
                 shared: bool = True) -> None:
        super().__init__()
        self._secret = secret
        self._shared = shared
        #: The dialect agreed with the server: min(ours, server's).
        self.version = VERSION_1_0

    def _start(self, cursor: Cursor) -> bool:
        raw = cursor.take(_VERSION_LEN)
        server_version = _parse_version(raw)
        if server_version is None:
            return self._fail(f"not a UIP server: {raw!r}")
        if server_version < VERSION_1_0:
            return self._fail(f"server version {raw!r} unsupported")
        self.version = min(server_version, _parse_version(PROTOCOL_VERSION))
        self._out.extend(_version_bytes(self.version))
        self._state = self._security_offer
        return True

    def _security_offer(self, cursor: Cursor) -> bool:
        count = cursor.u8()
        if count == 0:
            return self._fail("server offered no security types")
        offered = [cursor.u8() for _ in range(count)]
        if SECURITY_SHARED_SECRET in offered and self._secret is not None:
            self._out.extend(Writer().u8(SECURITY_SHARED_SECRET).getvalue())
            self._state = self._challenge
            return True
        if SECURITY_NONE in offered:
            self._out.extend(Writer().u8(SECURITY_NONE).getvalue())
            self._state = self._security_status
            return True
        if SECURITY_SHARED_SECRET in offered:
            return self._fail("server requires a secret, none configured")
        return self._fail(f"no mutual security type in {offered}")

    def _challenge(self, cursor: Cursor) -> bool:
        challenge = cursor.take(_CHALLENGE_LEN)
        self._out.extend(_secret_response(self._secret or "", challenge))
        self._state = self._security_status
        return True

    def _security_status(self, cursor: Cursor) -> bool:
        status = cursor.u32()
        if status != _STATUS_OK:
            return self._fail("server rejected authentication")
        self._out.extend(Writer().u8(int(self._shared)).getvalue())
        self._state = self._server_init
        return True

    def _server_init(self, cursor: Cursor) -> bool:
        width = cursor.u16()
        height = cursor.u16()
        pixel_format = PixelFormat.decode(cursor.take(16))
        name_len = cursor.u32()
        if name_len > MAX_NAME_LEN:
            return self._fail(f"server name length {name_len} exceeds "
                              f"{MAX_NAME_LEN} (corrupt ServerInit?)")
        name = cursor.take(name_len).decode("latin-1")
        self.result = HandshakeResult(width, height, pixel_format, name,
                                      self._shared, version=self.version)
        return False

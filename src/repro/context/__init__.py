"""Situation-driven device selection (paper §2.1, second characteristic).

"the most appropriate interaction device should be dynamically chosen
according to a user's current situation and preference, and the selection
of interaction devices should be consistent whether s/he is living in any
spaces".

* :class:`UserSituation` — where the user is and what they are doing
  (hands/eyes busy, seated, ambient noise),
* :class:`PreferenceStore` — per-user base device weights plus situational
  rules,
* :class:`SelectionPolicy` — deterministic scoring of registered devices
  against the situation and preferences,
* :class:`ContextManager` — watches the situation and drives the proxy's
  dynamic device switches.
"""

from repro.context.model import Activity, UserSituation
from repro.context.preferences import PreferenceRule, PreferenceStore
from repro.context.policy import ScoredDevice, SelectionPolicy
from repro.context.manager import ContextManager, SwitchRecord
from repro.context.arbiter import DeviceArbiter, HandoffRecord
from repro.context.profiles import UserProfile, declarative_rule

__all__ = [
    "Activity",
    "ContextManager",
    "DeviceArbiter",
    "HandoffRecord",
    "PreferenceRule",
    "PreferenceStore",
    "ScoredDevice",
    "SelectionPolicy",
    "SwitchRecord",
    "UserProfile",
    "UserSituation",
    "declarative_rule",
]

"""Device ownership arbitration for multi-user homes.

One home, several residents, a finite pool of interaction devices: the
:class:`DeviceArbiter` guarantees every device is driven by at most one
user's session at a time while keeping selection *situational* — whoever
needs a device most, holds it.

Rules (deterministic, explainable like the rest of the policy layer):

* a free device goes to whichever user's selection asks for it first;
* a held device is only taken by *preemption*: the challenger's score for
  the device (in their situation, for the role they want) must be strictly
  greater than the incumbent's current score for it — ties keep the
  incumbent, so two users on the same sofa do not flap a panel between
  them;
* a preempted user is *released* immediately (their session deselects the
  device on the spot, so two sessions never push frames to one screen) and
  re-selects on the next scheduler tick, falling back to their next-best
  device;
* whenever a user's reselect lets devices go, every other user gets a
  reselect scheduled — a panel freed by someone leaving the room is picked
  up by whoever is still there.

Preemption's strict-improvement rule makes cascades terminate: with
situations fixed, each handoff strictly raises the holding score of the
contested device, so a device changes hands at most once per user per
situation change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.context.policy import VIABILITY_FLOOR, ScoredDevice
from repro.util.errors import ContextError
from repro.util.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.context.manager import ContextManager


@dataclass(frozen=True)
class HandoffRecord:
    """One arbitrated ownership change, for traces and tests."""

    time: float
    device_id: str
    from_user: Optional[str]
    to_user: str
    preempted: bool


class DeviceArbiter:
    """At-most-one-user-per-device ownership with score-based preemption."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self._managers: dict[str, "ContextManager"] = {}
        #: device_id -> user_id currently holding it.
        self.holders: dict[str, str] = {}
        self._reselect_pending: set[str] = set()
        self.preemptions = 0
        self.handoffs: list[HandoffRecord] = []

    # -- membership ---------------------------------------------------------

    def register(self, manager: "ContextManager") -> None:
        if manager.user_id in self._managers:
            raise ContextError(
                f"user {manager.user_id!r} already registered")
        self._managers[manager.user_id] = manager

    def unregister(self, user_id: str) -> None:
        self._managers.pop(user_id, None)
        self._reselect_pending.discard(user_id)
        released = [d for d, u in self.holders.items() if u == user_id]
        for device_id in released:
            del self.holders[device_id]
        if released:
            self._wake_others(user_id)

    def holder_of(self, device_id: str) -> Optional[str]:
        return self.holders.get(device_id)

    # -- arbitration --------------------------------------------------------

    def arbitrate(self, manager: "ContextManager",
                  devices) -> tuple[Optional[str], Optional[str]]:
        """Pick (input, output) for one user, honouring ownership.

        Walks the policy's ranking best-first, skipping devices held by a
        user this one cannot outscore; claims the winners (preempting
        where the strict-improvement rule allows) and releases anything
        this user held but no longer wants.
        """
        situation = manager.situation
        ranked_inputs = manager.policy.rank_inputs(devices, situation)
        ranked_outputs = manager.policy.rank_outputs(devices, situation)
        input_id = self._pick(manager.user_id, ranked_inputs)
        output_id = self._pick(manager.user_id, ranked_outputs)
        self._commit(manager.user_id, input_id, output_id)
        return input_id, output_id

    def _pick(self, user_id: str,
              ranked: list[ScoredDevice]) -> Optional[str]:
        for candidate in ranked:
            if candidate.score <= VIABILITY_FLOOR:
                return None  # ranking is sorted: nothing viable below
            holder = self.holders.get(candidate.device_id)
            if holder is None or holder == user_id:
                return candidate.device_id
            if candidate.score > self._holding_score(holder,
                                                     candidate.device_id):
                return candidate.device_id
        return None

    def _holding_score(self, holder: str, device_id: str) -> float:
        """How much the incumbent values the device right now.

        Scored with the incumbent's own policy and situation, for the
        role(s) they actually use the device in; a stale holding whose
        descriptor vanished from the incumbent's proxy scores -inf and is
        always preemptible.
        """
        manager = self._managers.get(holder)
        if manager is None:
            return float("-inf")
        binding = manager.proxy.devices.get(device_id)
        if binding is None:
            return float("-inf")
        descriptor = binding.descriptor
        proxy = manager.proxy
        if proxy.session is not None:
            uses_input = proxy.current_input == device_id
            uses_output = proxy.current_output == device_id
        else:
            # no live session to read the role from (arbitration decided
            # ahead of connection): value the device by capability
            uses_input = descriptor.is_input
            uses_output = descriptor.is_output
        scores = []
        if uses_input:
            scores.append(manager.policy.score_input(
                descriptor, manager.situation).score)
        if uses_output:
            scores.append(manager.policy.score_output(
                descriptor, manager.situation).score)
        return max(scores) if scores else float("-inf")

    def _commit(self, user_id: str, input_id: Optional[str],
                output_id: Optional[str]) -> None:
        wanted = {d for d in (input_id, output_id) if d is not None}
        released = [d for d, u in self.holders.items()
                    if u == user_id and d not in wanted]
        for device_id in released:
            del self.holders[device_id]
        now = self.scheduler.now()
        for device_id in wanted:
            incumbent = self.holders.get(device_id)
            if incumbent is not None and incumbent != user_id:
                self._preempt(incumbent, device_id)
                self.handoffs.append(HandoffRecord(
                    now, device_id, incumbent, user_id, preempted=True))
            elif incumbent is None:
                self.handoffs.append(HandoffRecord(
                    now, device_id, None, user_id, preempted=False))
            self.holders[device_id] = user_id
        if released:
            self._wake_others(user_id)

    def _preempt(self, loser_id: str, device_id: str) -> None:
        """Release the device from the loser's live session, right now.

        The release must not wait for the loser's rescheduled reselect:
        between now and then the winner's session pushes a full frame to
        the device, and two sessions must never drive one screen.
        """
        self.preemptions += 1
        manager = self._managers.get(loser_id)
        if manager is None:
            return
        proxy = manager.proxy
        if proxy.session is not None:
            if proxy.current_input == device_id:
                proxy.select_input(None)
            if proxy.current_output == device_id:
                proxy.select_output(None)
        self._schedule_reselect(loser_id)

    # -- deferred reselects -------------------------------------------------

    def _wake_others(self, except_user: str) -> None:
        for user_id in self._managers:
            if user_id != except_user:
                self._schedule_reselect(user_id)

    def _schedule_reselect(self, user_id: str) -> None:
        if user_id in self._reselect_pending:
            return
        self._reselect_pending.add(user_id)
        self.scheduler.call_soon(self._run_reselect, user_id)

    def _run_reselect(self, user_id: str) -> None:
        self._reselect_pending.discard(user_id)
        manager = self._managers.get(user_id)
        if manager is not None:
            manager.reselect()

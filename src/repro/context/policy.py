"""The device selection policy: score every candidate, pick the best.

The scoring rules encode the paper's §2.1 examples:

* hands busy (cooking)  -> hands-free inputs (voice, gesture) win over
  touch/keypad/buttons;
* on the sofa watching TV -> the living-room remote and the TV panel win;
* in another room -> fixed displays elsewhere are heavily penalised, the
  carried personal devices (phone, PDA) win;
* user preferences are added on top, so a user who hates voice control
  can out-vote the situational bonus.

Scores are pure functions of (descriptor, situation, preferences); ties
break lexicographically on device id so selection is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.context.model import UserSituation
from repro.context.preferences import PreferenceStore
from repro.proxy.descriptors import DeviceDescriptor

#: Score below which a device is considered unusable in this situation.
VIABILITY_FLOOR = -3.0


@dataclass(frozen=True)
class ScoredDevice:
    """One candidate with its score breakdown (sorted best-first)."""

    device_id: str
    kind: str
    score: float
    reasons: tuple[tuple[str, float], ...] = ()


class SelectionPolicy:
    """Deterministic additive scoring over device descriptors."""

    def __init__(self, preferences: Optional[PreferenceStore] = None) -> None:
        self.preferences = (preferences if preferences is not None
                            else PreferenceStore())

    # -- input scoring ------------------------------------------------------

    def score_input(self, descriptor: DeviceDescriptor,
                    situation: UserSituation) -> ScoredDevice:
        reasons: list[tuple[str, float]] = [("candidate", 1.0)]
        tags = descriptor.tags

        def add(reason: str, delta: float) -> None:
            reasons.append((reason, delta))

        hands_needed = bool(descriptor.input_modes
                            & {"touch", "keypad", "ir", "gesture"})
        if situation.hands_busy:
            if "hands_free" in tags:
                add("hands busy: hands-free input", +3.0)
            elif hands_needed:
                add("hands busy: input needs hands", -4.0)
        if situation.eyes_busy:
            if "eyes_free" in tags:
                add("eyes busy: eyes-free input", +1.5)
            elif "touch" in descriptor.input_modes:
                add("eyes busy: touch needs looking", -1.5)
        if descriptor.has_tag(situation.location):
            add(f"device lives in {situation.location}", +2.0)
        elif "fixed" in tags:
            add("fixed device in another room", -5.0)
        if "portable" in tags or "wearable" in tags:
            add("carried along", +1.0)
        if "always_carried" in tags:
            add("always on the user", +0.5)
        if situation.seated and "one_handed" in tags:
            add("seated: one-handed comfort", +1.0)
        if "voice" in descriptor.input_modes and situation.noise > 0.5:
            add("too noisy for recognition", -3.0)
        pref = self.preferences.score(descriptor.kind, situation)
        if pref:
            add("user preference", pref)
        total = sum(delta for _, delta in reasons)
        return ScoredDevice(descriptor.device_id, descriptor.kind, total,
                            tuple(reasons))

    # -- output scoring ----------------------------------------------------------

    def score_output(self, descriptor: DeviceDescriptor,
                     situation: UserSituation) -> ScoredDevice:
        reasons: list[tuple[str, float]] = [("candidate", 1.0)]
        tags = descriptor.tags
        screen = descriptor.screen

        def add(reason: str, delta: float) -> None:
            reasons.append((reason, delta))

        if descriptor.has_tag(situation.location):
            add(f"display lives in {situation.location}", +3.0)
        elif "fixed" in tags:
            add("fixed display in another room", -8.0)
        if "portable" in tags:
            add("carried along", +1.5)
        if situation.seated and "large" in tags:
            add("seated: big shared screen", +2.0)
        if situation.eyes_busy and "large" in tags:
            add("eyes busy: glanceable big screen", +1.0)
        if screen is not None:
            # mild quality bonus, saturating: log-ish via thresholds
            pixels = screen.width * screen.height
            if pixels >= 700_000:
                add("high resolution", +1.0)
            elif pixels >= 70_000:
                add("medium resolution", +0.5)
            if screen.bits_per_pixel >= 16:
                add("colour screen", +0.5)
        pref = self.preferences.score(descriptor.kind, situation)
        if pref:
            add("user preference", pref)
        total = sum(delta for _, delta in reasons)
        return ScoredDevice(descriptor.device_id, descriptor.kind, total,
                            tuple(reasons))

    # -- choosing --------------------------------------------------------------------

    def rank_inputs(self, devices: list[DeviceDescriptor],
                    situation: UserSituation) -> list[ScoredDevice]:
        scored = [self.score_input(d, situation)
                  for d in devices if d.is_input]
        return sorted(scored, key=lambda s: (-s.score, s.device_id))

    def rank_outputs(self, devices: list[DeviceDescriptor],
                     situation: UserSituation) -> list[ScoredDevice]:
        scored = [self.score_output(d, situation)
                  for d in devices if d.is_output]
        return sorted(scored, key=lambda s: (-s.score, s.device_id))

    def choose(self, devices: list[DeviceDescriptor],
               situation: UserSituation
               ) -> tuple[Optional[str], Optional[str]]:
        """(input_device_id, output_device_id) — None if nothing viable."""
        inputs = self.rank_inputs(devices, situation)
        outputs = self.rank_outputs(devices, situation)
        best_input = (inputs[0].device_id
                      if inputs and inputs[0].score > VIABILITY_FLOOR
                      else None)
        best_output = (outputs[0].device_id
                       if outputs and outputs[0].score > VIABILITY_FLOOR
                       else None)
        return (best_input, best_output)

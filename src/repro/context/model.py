"""The user situation model.

A deliberately small, sensor-plausible model: 2002-era context systems
(Active Badge and friends) could produce location, rough activity and
simple body-state flags.  Everything the selection policy uses is derivable
from those.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.util.errors import ContextError

#: Rooms of the simulated home (plus elsewhere).
LOCATIONS = ("living_room", "kitchen", "bedroom", "office", "outside")


class Activity(enum.Enum):
    IDLE = "idle"
    WATCHING_TV = "watching_tv"
    COOKING = "cooking"
    READING = "reading"
    CLEANING = "cleaning"
    SLEEPING = "sleeping"
    WORKING = "working"


@dataclass(frozen=True)
class UserSituation:
    """A snapshot of the user's context."""

    location: str = "living_room"
    activity: Activity = Activity.IDLE
    hands_busy: bool = False
    eyes_busy: bool = False
    seated: bool = False
    #: Ambient noise 0..1 (degrades voice input attractiveness).
    noise: float = 0.0

    def __post_init__(self) -> None:
        if self.location not in LOCATIONS:
            raise ContextError(f"unknown location {self.location!r}; "
                               f"expected one of {LOCATIONS}")
        if not 0.0 <= self.noise <= 1.0:
            raise ContextError(f"noise must be in [0, 1]: {self.noise}")

    def evolve(self, **changes) -> "UserSituation":
        """A copy with the given fields changed."""
        return replace(self, **changes)

    @classmethod
    def cooking(cls) -> "UserSituation":
        """The paper's canonical scenario: cooking, hands busy, noisy-ish."""
        return cls(location="kitchen", activity=Activity.COOKING,
                   hands_busy=True, eyes_busy=True, noise=0.3)

    @classmethod
    def on_the_sofa(cls) -> "UserSituation":
        """The paper's other scenario: watching TV on the sofa."""
        return cls(location="living_room", activity=Activity.WATCHING_TV,
                   seated=True)

"""ContextManager: turns situation changes into proxy device switches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.context.model import UserSituation
from repro.context.policy import SelectionPolicy
from repro.proxy.proxy import UniIntProxy


@dataclass(frozen=True)
class SwitchRecord:
    """One device switch decision, for traces and the switching bench."""

    time: float
    situation: UserSituation
    input_device: Optional[str]
    output_device: Optional[str]
    changed: bool


class ContextManager:
    """Watches the user's situation; re-selects devices when it changes.

    The manager is *mechanism* only: all judgement lives in the
    :class:`~repro.context.policy.SelectionPolicy` and the user's
    preferences, so behaviour is testable and explainable.
    """

    def __init__(self, proxy: UniIntProxy, policy: SelectionPolicy,
                 situation: Optional[UserSituation] = None) -> None:
        self.proxy = proxy
        self.policy = policy
        self.situation = (situation if situation is not None
                          else UserSituation())
        self.history: list[SwitchRecord] = []
        #: Demo/test hook fired after every (re)selection.
        self.on_switch: Optional[Callable[[SwitchRecord], None]] = None

    # -- situation updates -----------------------------------------------------

    def set_situation(self, situation: UserSituation) -> SwitchRecord:
        """Replace the situation and re-select devices."""
        self.situation = situation
        return self.reselect()

    def update(self, **changes) -> SwitchRecord:
        """Evolve the situation (e.g. ``update(hands_busy=True)``)."""
        return self.set_situation(self.situation.evolve(**changes))

    # -- selection ----------------------------------------------------------------

    def reselect(self) -> SwitchRecord:
        """Score all registered devices and apply the best pairing."""
        devices = self.proxy.list_devices()
        input_id, output_id = self.policy.choose(devices, self.situation)
        changed = (input_id != self.proxy.current_input
                   or output_id != self.proxy.current_output)
        if self.proxy.session is not None:
            if input_id != self.proxy.current_input:
                self.proxy.select_input(input_id)
            if output_id != self.proxy.current_output:
                self.proxy.select_output(output_id)
        record = SwitchRecord(
            time=self.proxy.scheduler.now(),
            situation=self.situation,
            input_device=input_id,
            output_device=output_id,
            changed=changed,
        )
        self.history.append(record)
        if self.on_switch is not None:
            self.on_switch(record)
        return record

    @property
    def switch_count(self) -> int:
        """Number of reselections that actually changed a device."""
        return sum(1 for record in self.history if record.changed)

"""ContextManager: turns situation changes into proxy device switches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.context.model import UserSituation
from repro.context.policy import SelectionPolicy
from repro.proxy.proxy import UniIntProxy


@dataclass
class SwitchRecord:
    """One device switch decision, for traces and the switching bench.

    ``latency_s`` is filled in after the fact (by whoever can observe the
    device end — e.g. the :class:`~repro.home.Home` facade) once the new
    output device has received its first full frame: the user-visible
    follow-me handoff latency over the device's bearer.
    """

    time: float
    situation: UserSituation
    input_device: Optional[str]
    output_device: Optional[str]
    changed: bool
    user_id: str = "resident"
    latency_s: Optional[float] = None


class ContextManager:
    """Watches one user's situation; re-selects devices when it changes.

    The manager is *mechanism* only: all judgement lives in the
    :class:`~repro.context.policy.SelectionPolicy` and the user's
    preferences, so behaviour is testable and explainable.  In a
    multi-user home every manager shares one
    :class:`~repro.context.arbiter.DeviceArbiter`, which keeps contested
    devices owned by at most one user at a time.
    """

    def __init__(self, proxy: UniIntProxy, policy: SelectionPolicy,
                 situation: Optional[UserSituation] = None,
                 user_id: str = "resident",
                 arbiter=None) -> None:
        self.proxy = proxy
        self.policy = policy
        self.user_id = user_id
        #: Optional shared DeviceArbiter; None means single-user behaviour.
        self.arbiter = arbiter
        self.situation = (situation if situation is not None
                          else UserSituation())
        self.history: list[SwitchRecord] = []
        #: Demo/test hook fired after every (re)selection.
        self.on_switch: Optional[Callable[[SwitchRecord], None]] = None

    # -- situation updates -----------------------------------------------------

    def set_situation(self, situation: UserSituation) -> SwitchRecord:
        """Replace the situation and re-select devices."""
        self.situation = situation
        return self.reselect()

    def update(self, **changes) -> SwitchRecord:
        """Evolve the situation (e.g. ``update(hands_busy=True)``)."""
        return self.set_situation(self.situation.evolve(**changes))

    # -- selection ----------------------------------------------------------------

    def reselect(self) -> SwitchRecord:
        """Score all registered devices and apply the best pairing.

        With an arbiter attached, devices held by other users are skipped
        unless this user's score beats the incumbent's (preemption) — the
        arbiter releases the loser's selection before this user's session
        takes the device over.
        """
        devices = self.proxy.list_devices()
        if self.arbiter is not None:
            input_id, output_id = self.arbiter.arbitrate(self, devices)
        else:
            input_id, output_id = self.policy.choose(devices, self.situation)
        changed = (input_id != self.proxy.current_input
                   or output_id != self.proxy.current_output)
        if self.proxy.session is not None:
            if input_id != self.proxy.current_input:
                self.proxy.select_input(input_id)
            if output_id != self.proxy.current_output:
                self.proxy.select_output(output_id)
        record = SwitchRecord(
            time=self.proxy.scheduler.now(),
            situation=self.situation,
            input_device=input_id,
            output_device=output_id,
            changed=changed,
            user_id=self.user_id,
        )
        self.history.append(record)
        if self.on_switch is not None:
            self.on_switch(record)
        return record

    @property
    def switch_count(self) -> int:
        """Number of reselections that actually changed a device."""
        return sum(1 for record in self.history if record.changed)

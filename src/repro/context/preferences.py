"""Per-user device preferences.

Preferences are additive score contributions: a base weight per device
kind, plus conditional rules ("while cooking, boost voice by 3").  Keeping
them additive makes policy decisions explainable — the score breakdown in
:class:`~repro.context.policy.ScoredDevice` shows exactly why a device won.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.context.model import UserSituation


@dataclass(frozen=True)
class PreferenceRule:
    """A conditional preference: if the situation matches, apply boosts."""

    description: str
    condition: Callable[[UserSituation], bool]
    boosts: dict  # device kind -> score delta

    def applies(self, situation: UserSituation) -> bool:
        return bool(self.condition(situation))


class PreferenceStore:
    """One user's preferences."""

    def __init__(self, user: str = "resident") -> None:
        self.user = user
        self._base: dict[str, float] = {}
        self._rules: list[PreferenceRule] = []

    def prefer(self, kind: str, weight: float) -> None:
        """Set the base weight for a device kind (e.g. 'pda' -> 1.5)."""
        self._base[kind] = float(weight)

    def add_rule(self, rule: PreferenceRule) -> None:
        self._rules.append(rule)

    def rule(self, description: str,
             condition: Callable[[UserSituation], bool],
             **boosts: float) -> PreferenceRule:
        """Convenience builder: ``prefs.rule("...", cond, voice=3.0)``."""
        built = PreferenceRule(description, condition, dict(boosts))
        self.add_rule(built)
        return built

    def score(self, kind: str, situation: UserSituation) -> float:
        """Total preference contribution for this device kind now."""
        total = self._base.get(kind, 0.0)
        for rule in self._rules:
            if rule.applies(situation):
                total += float(rule.boosts.get(kind, 0.0))
        return total

    def explain(self, kind: str,
                situation: UserSituation) -> list[tuple[str, float]]:
        """Per-contribution breakdown (for diagnostics)."""
        parts: list[tuple[str, float]] = []
        if kind in self._base:
            parts.append(("base preference", self._base[kind]))
        for rule in self._rules:
            if rule.applies(situation) and kind in rule.boosts:
                parts.append((rule.description, float(rule.boosts[kind])))
        return parts

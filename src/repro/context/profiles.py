"""Portable user profiles.

Paper §1: "the selection of interaction devices should be consistent
whether s/he is living in any spaces such as at home, in offices, or in
public spaces."  The mechanism for that consistency is a *portable
profile*: the user's preference weights and situational rules serialise to
plain data, travel with the user, and install into whatever space
(:class:`~repro.home.Home`) they walk into.

Declarative rules (field-match conditions) serialise; code rules
(arbitrary callables) work at runtime but are skipped by ``to_dict`` with
a recorded warning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.context.model import Activity, UserSituation
from repro.context.policy import SelectionPolicy
from repro.context.preferences import PreferenceRule, PreferenceStore
from repro.util.errors import ContextError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.home import Home

#: Situation fields a declarative condition may match on.
_MATCHABLE = ("location", "activity", "hands_busy", "eyes_busy", "seated")


def situation_matches(spec: dict, situation: UserSituation) -> bool:
    """True when every field in ``spec`` equals the situation's value."""
    for key, expected in spec.items():
        if key not in _MATCHABLE:
            raise ContextError(f"cannot match on situation field {key!r}")
        actual = getattr(situation, key)
        if key == "activity":
            actual = actual.value
            if isinstance(expected, Activity):
                expected = expected.value
        if actual != expected:
            return False
    return True


def declarative_rule(description: str, spec: dict,
                     boosts: dict) -> PreferenceRule:
    """A serialisable rule: condition is a field-match spec."""
    spec = dict(spec)
    for key in spec:
        if key not in _MATCHABLE:
            raise ContextError(f"cannot match on situation field {key!r}")
    rule = PreferenceRule(
        description=description,
        condition=lambda situation: situation_matches(spec, situation),
        boosts=dict(boosts),
    )
    # mark for serialisation
    object.__setattr__(rule, "spec", spec)
    return rule


@dataclass
class UserProfile:
    """A user's name, preferences and habitual starting situation."""

    name: str
    preferences: PreferenceStore = field(default_factory=PreferenceStore)
    default_situation: UserSituation = field(default_factory=UserSituation)

    # -- authoring -----------------------------------------------------------

    def prefer(self, kind: str, weight: float) -> "UserProfile":
        self.preferences.prefer(kind, weight)
        return self

    def rule(self, description: str, spec: dict,
             **boosts: float) -> "UserProfile":
        """Add a declarative (serialisable) situational rule."""
        self.preferences.add_rule(declarative_rule(description, spec,
                                                   boosts))
        return self

    # -- installation -----------------------------------------------------------

    def install(self, home: "Home",
                situation: Optional[UserSituation] = None,
                user_id: Optional[str] = None) -> None:
        """Make this profile drive one user's device selection.

        ``user_id`` defaults to the home's default user, preserving the
        single-user behaviour; in a multi-user home the profile installs
        into that resident's preference store and context only.
        """
        user = (home.user(user_id) if user_id is not None
                else home.default_user)
        user.preferences = self.preferences
        user.context.policy = SelectionPolicy(self.preferences)
        user.context.set_situation(
            situation if situation is not None else self.default_situation)

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> dict:
        rules = []
        skipped = []
        for rule in self.preferences._rules:
            spec = getattr(rule, "spec", None)
            if spec is None:
                skipped.append(rule.description)
                continue
            rules.append({"description": rule.description, "spec": spec,
                          "boosts": rule.boosts})
        return {
            "name": self.name,
            "base": dict(self.preferences._base),
            "rules": rules,
            "skipped_code_rules": skipped,
            "default_situation": {
                "location": self.default_situation.location,
                "activity": self.default_situation.activity.value,
                "hands_busy": self.default_situation.hands_busy,
                "eyes_busy": self.default_situation.eyes_busy,
                "seated": self.default_situation.seated,
                "noise": self.default_situation.noise,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UserProfile":
        preferences = PreferenceStore(user=str(data.get("name", "user")))
        for kind, weight in data.get("base", {}).items():
            preferences.prefer(kind, float(weight))
        for rule in data.get("rules", []):
            preferences.add_rule(declarative_rule(
                rule["description"], rule["spec"], rule["boosts"]))
        situation_data = dict(data.get("default_situation", {}))
        if "activity" in situation_data:
            situation_data["activity"] = Activity(
                situation_data["activity"])
        situation = UserSituation(**situation_data)
        return cls(name=str(data.get("name", "user")),
                   preferences=preferences, default_situation=situation)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "UserProfile":
        return cls.from_dict(json.loads(text))

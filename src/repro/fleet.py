"""Many homes, one process: the :class:`HomeFleet`.

The paper deployed one UniInt server per home.  Scaling that to a hosted
service means packing many :class:`~repro.home.Home` instances into one
process — each home keeps its own deterministic virtual-time scheduler,
its own real TCP listener for UIP clients, and its own failure domain,
while a single :class:`~repro.net.reactor.Reactor` multiplexes all of
their events and sockets over one ``selectors`` loop.

Isolation is the point, and it is enforced per home:

* **fairness** — each home fires at most its *event budget* of scheduler
  events per reactor turn, so one home stuck in an event storm degrades
  into a slow tenant, not a noisy neighbour that freezes the loop;
* **containment** — an exception escaping any of a home's events or
  socket callbacks quarantines that home (events stop, its fds leave the
  selector, the error is recorded on its member) and the rest of the
  fleet keeps serving frames.

>>> fleet = HomeFleet()
>>> homes = [fleet.add_home(f"h{i}") for i in range(3)]   # doctest: +SKIP
>>> fleet.settle()                                        # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.home import Home
from repro.net.reactor import DEFAULT_EVENT_BUDGET, Reactor
from repro.util.errors import ProxyError
from repro.util.scheduler import Scheduler


@dataclass
class HomeFailureRecord:
    """The supervisor's memory of one home's crashes.

    Grows one entry per quarantine observed by :meth:`HomeFleet.supervise`;
    ``permanent`` flips once the restart budget is spent and the home is
    left quarantined for good, with ``reason`` saying why.
    """

    name: str
    restarts: int = 0
    errors: list = field(default_factory=list)
    tracebacks: list = field(default_factory=list)
    failed_at: list = field(default_factory=list)
    permanent: bool = False
    reason: Optional[str] = None


class HomeFleet:
    """N independent homes multiplexed over one I/O reactor.

    Every home added through :meth:`add_home` runs ``transport="tcp"``:
    its UIP sessions ride real kernel sockets accepted on the home's own
    listening port, so the fleet is exactly the hosted-deployment shape —
    one process, many tenants, per-tenant TCP endpoints.
    """

    def __init__(self, reactor: Optional[Reactor] = None,
                 event_budget: int = DEFAULT_EVENT_BUDGET) -> None:
        self.reactor = reactor if reactor is not None else Reactor()
        self._owns_reactor = reactor is None
        self.event_budget = event_budget
        self.homes: dict[str, Home] = {}
        self._closed = False
        # supervision (enable_supervision): restart quarantined homes
        # from their recorded provisioning spec, up to a capped budget
        self._supervised = False
        self._max_restarts = 3
        self._rebuild: Optional[Callable[["HomeFleet", str, Home],
                                         None]] = None
        self._home_specs: dict[str, dict] = {}
        self._failures: dict[str, HomeFailureRecord] = {}

    # -- tenancy ------------------------------------------------------------

    def add_home(self, name: str,
                 width: int = 160, height: int = 120,
                 event_budget: Optional[int] = None,
                 **home_kwargs) -> Home:
        """Provision one tenant home on the shared reactor.

        ``event_budget`` overrides the fleet default for this home (a
        premium tenant can buy a bigger slice).  Remaining keyword
        arguments pass through to :class:`~repro.home.Home`.
        """
        if name in self.homes:
            raise ProxyError(f"home {name!r} is already in this fleet")
        home = Home(width=width, height=height,
                    scheduler=Scheduler(),
                    transport="tcp",
                    reactor=self.reactor,
                    name=name,
                    event_budget=(event_budget if event_budget is not None
                                  else self.event_budget),
                    **home_kwargs)
        self.homes[name] = home
        self._home_specs[name] = dict(width=width, height=height,
                                      event_budget=event_budget,
                                      **home_kwargs)
        return home

    def remove_home(self, name: str) -> None:
        """Evict a tenant: tear down its sockets and reactor membership."""
        home = self.home(name)
        del self.homes[name]
        self._home_specs.pop(name, None)
        self._failures.pop(name, None)
        home.close()

    def home(self, name: str) -> Home:
        found = self.homes.get(name)
        if found is None:
            raise ProxyError(f"no home {name!r} in this fleet "
                             f"(have: {sorted(self.homes) or 'none'})")
        return found

    def __len__(self) -> int:
        return len(self.homes)

    def __iter__(self) -> Iterator[Home]:
        return iter(self.homes.values())

    # -- health -------------------------------------------------------------

    @property
    def failed_homes(self) -> tuple[Home, ...]:
        """Homes the reactor has quarantined (their member raised)."""
        return tuple(home for home in self.homes.values()
                     if home.reactor_member is not None
                     and home.reactor_member.failed)

    @property
    def healthy_homes(self) -> tuple[Home, ...]:
        return tuple(home for home in self.homes.values()
                     if home.reactor_member is not None
                     and not home.reactor_member.failed)

    def error_of(self, name: str) -> Optional[BaseException]:
        """The last contained exception of one home (None when healthy)."""
        member = self.home(name).reactor_member
        return member.last_error if member is not None else None

    def traceback_of(self, name: str) -> Optional[str]:
        """The formatted traceback of one home's last contained error."""
        member = self.home(name).reactor_member
        return member.last_traceback if member is not None else None

    # -- supervision --------------------------------------------------------

    def enable_supervision(self, max_restarts: int = 3,
                           rebuild: Optional[Callable[
                               ["HomeFleet", str, Home], None]] = None
                           ) -> None:
        """Arm the restart supervisor.

        A quarantined home found by :meth:`supervise` is torn down and
        re-provisioned from its recorded ``add_home`` spec, at most
        ``max_restarts`` times; a crash-looping tenant then fails
        permanently with a recorded reason.  ``rebuild(fleet, name,
        home)`` — when given — repopulates the fresh home (appliances,
        users, devices); without it the home comes back empty.
        """
        self._supervised = True
        self._max_restarts = max_restarts
        self._rebuild = rebuild

    def supervise(self) -> list[str]:
        """One supervision sweep: restart every quarantined home.

        Returns the names restarted this sweep.  Homes whose restart
        budget is spent are left quarantined and marked permanently
        failed (see :meth:`failure_of`); healthy homes are untouched.
        """
        if not self._supervised:
            return []
        restarted: list[str] = []
        for name, home in list(self.homes.items()):
            member = home.reactor_member
            if member is None or not member.failed:
                continue
            record = self._failures.setdefault(name,
                                               HomeFailureRecord(name=name))
            record.errors.append(member.last_error)
            record.tracebacks.append(member.last_traceback)
            record.failed_at.append(member.failed_at)
            if record.restarts >= self._max_restarts:
                if not record.permanent:
                    record.permanent = True
                    record.reason = (
                        f"crash loop: restart budget of "
                        f"{self._max_restarts} spent "
                        f"(last error: {member.last_error!r})")
                continue
            spec = self._home_specs.get(name, {})
            del self.homes[name]
            home.close()
            fresh = self.add_home(name, **spec)
            record.restarts += 1
            restarted.append(name)
            if self._rebuild is not None:
                self._rebuild(self, name, fresh)
        return restarted

    def failure_of(self, name: str) -> Optional[HomeFailureRecord]:
        """The supervisor's crash record for one home (None if clean)."""
        return self._failures.get(name)

    @property
    def permanently_failed(self) -> tuple[str, ...]:
        """Names of homes the supervisor has given up on."""
        return tuple(sorted(name for name, record in self._failures.items()
                            if record.permanent))

    # -- driving ------------------------------------------------------------

    def settle(self) -> None:
        """Run the whole fleet until quiescent (events and sockets)."""
        self.reactor.run_until_idle()

    def run_until(self, predicate: Callable[[], bool],
                  timeout_s: Optional[float] = 5.0) -> bool:
        """Turn the reactor until ``predicate()`` holds; False on timeout."""
        return self.reactor.run_until(predicate, timeout_s=timeout_s)

    def turn(self, block_s: float = 0.0) -> bool:
        """One reactor turn (see :meth:`repro.net.reactor.Reactor.turn`)."""
        return self.reactor.turn(block_s=block_s)

    def close(self) -> None:
        """Tear down every home, then the shared reactor (if owned).

        Each home hard-closes its own registered fds (see
        :meth:`repro.home.Home.close` — no graceful drain, so a stalled
        tenant cannot wedge the teardown), then the selector itself
        closes.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for home in list(self.homes.values()):
            home.close()
        self.homes.clear()
        if self._owns_reactor:
            self.reactor.close()

"""Visual theme: the classic 2002 bevelled-grey appliance-panel look."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphics.bitmap import Color
from repro.graphics.font import Font, default_font


@dataclass(frozen=True)
class Theme:
    """Colours and fonts shared by all widgets in a window."""

    background: Color = (206, 206, 206)
    face: Color = (192, 192, 192)
    face_pressed: Color = (168, 168, 168)
    face_disabled: Color = (200, 200, 200)
    light: Color = (250, 250, 250)
    shadow: Color = (96, 96, 96)
    text: Color = (10, 10, 10)
    text_disabled: Color = (130, 130, 130)
    accent: Color = (40, 80, 160)
    accent_text: Color = (255, 255, 255)
    focus: Color = (220, 140, 30)
    well: Color = (255, 255, 255)
    padding: int = 4
    spacing: int = 4
    font: Font = field(default_factory=lambda: default_font(1))
    title_font: Font = field(default_factory=lambda: default_font(2))


#: The theme used unless a window overrides it.
DEFAULT_THEME = Theme()

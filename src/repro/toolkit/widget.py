"""Widget base class: tree structure, damage, focus, event routing."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.graphics.region import Rect
from repro.toolkit.canvas import Canvas
from repro.toolkit.events import KeyPress, Pointer
from repro.toolkit.theme import Theme
from repro.util.errors import ToolkitError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.toolkit.window import UIWindow


class Widget:
    """A node in the retained widget tree.

    Geometry: ``rect`` is the widget's rectangle in *parent* coordinates;
    :meth:`abs_rect` resolves it against the chain of ancestors.  Containers
    set children's rects in :meth:`perform_layout`.
    """

    #: Can this widget take keyboard focus?
    focusable = False

    def __init__(self) -> None:
        self.parent: Optional[Widget] = None
        self.children: list[Widget] = []
        self.rect = Rect(0, 0, 0, 0)
        self.visible = True
        self.enabled = True
        #: Set by the window on the focused widget.
        self.has_focus = False
        self._window: Optional["UIWindow"] = None
        #: Optional identifier used by tests and the appliance application.
        self.widget_id: Optional[str] = None
        self._teardown_hooks: list[Callable[[], None]] = []

    # -- tree -------------------------------------------------------------

    def add(self, child: "Widget") -> "Widget":
        """Append a child; returns the child for chaining."""
        if child.parent is not None:
            raise ToolkitError("widget already has a parent")
        if child is self:
            raise ToolkitError("widget cannot contain itself")
        child.parent = self
        self.children.append(child)
        self.invalidate()
        return child

    def remove(self, child: "Widget") -> None:
        if child.parent is not self:
            raise ToolkitError("not a child of this widget")
        window = self.window
        if window is not None:
            window.forget_widget(child)
        child.parent = None
        self.children.remove(child)
        self.invalidate()

    def remove_all(self) -> None:
        for child in list(self.children):
            self.remove(child)

    def on_teardown(self, hook: Callable[[], None]) -> None:
        """Register a cleanup hook run when this subtree is discarded.

        Panels use this to detach their FCM state listeners: without it,
        every UI rebuild would leave the old panel's closures subscribed
        to the handle forever (the listener-leak the regression tests
        guard against).
        """
        self._teardown_hooks.append(hook)

    def teardown(self) -> None:
        """Run teardown hooks over the whole subtree (children first)."""
        for child in self.children:
            child.teardown()
        hooks, self._teardown_hooks = self._teardown_hooks, []
        for hook in hooks:
            hook()

    @property
    def window(self) -> Optional["UIWindow"]:
        node: Optional[Widget] = self
        while node is not None:
            if node._window is not None:
                return node._window
            node = node.parent
        return None

    def attach_window(self, window: Optional["UIWindow"]) -> None:
        """Called by the window on its root widget only."""
        self._window = window

    def walk(self) -> Iterator["Widget"]:
        """Pre-order traversal of this subtree (visible or not)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, widget_id: str) -> Optional["Widget"]:
        """Locate a descendant by ``widget_id``."""
        for widget in self.walk():
            if widget.widget_id == widget_id:
                return widget
        return None

    # -- geometry -------------------------------------------------------------

    def abs_rect(self) -> Rect:
        rect = self.rect
        node = self.parent
        while node is not None:
            rect = rect.translate(node.rect.x, node.rect.y)
            node = node.parent
        return rect

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        """Natural size; containers aggregate children."""
        return (10, 10)

    def perform_layout(self, theme: Theme) -> None:
        """Assign children's rects.  Default: leave children alone."""
        for child in self.children:
            child.perform_layout(theme)

    # -- damage ----------------------------------------------------------------

    def invalidate(self) -> None:
        """Mark this widget's area as needing repaint."""
        window = self.window
        if window is not None:
            window.damage_widget(self)

    # -- painting ----------------------------------------------------------------

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        """Draw this widget (not children) in local coordinates."""

    def paint_tree(self, canvas: Canvas, theme: Theme) -> None:
        if not self.visible:
            return
        self.paint(canvas, theme)
        for child in self.children:
            child.paint_tree(canvas.offset(child.rect), theme)

    # -- input -------------------------------------------------------------------

    def hit_test(self, x: int, y: int) -> Optional["Widget"]:
        """Deepest visible descendant containing the local point (x, y)."""
        if not self.visible or not Rect(0, 0, self.rect.w,
                                        self.rect.h).contains_point(x, y):
            return None
        for child in reversed(self.children):
            hit = child.hit_test(x - child.rect.x, y - child.rect.y)
            if hit is not None:
                return hit
        return self

    def handle_pointer(self, event: Pointer) -> bool:
        """Pointer event in local coordinates; True if consumed."""
        return False

    def handle_key(self, event: KeyPress) -> bool:
        """Key press routed to the focused widget; True if consumed."""
        return False

    # -- focus --------------------------------------------------------------------

    @property
    def can_focus(self) -> bool:
        return (self.focusable and self.visible and self.enabled
                and self.window is not None)

    def request_focus(self) -> bool:
        window = self.window
        if window is None or not self.can_focus:
            return False
        window.set_focus(self)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f" id={self.widget_id!r}" if self.widget_id else ""
        return f"<{type(self).__name__}{ident} rect={self.rect}>"


class Bindable(Widget):
    """A widget with a primary action callback (buttons, toggles, lists)."""

    def __init__(self) -> None:
        super().__init__()
        self.on_activate: Optional[Callable[[Widget], None]] = None

    def activate(self) -> None:
        if not self.enabled:
            return
        if self.on_activate is not None:
            self.on_activate(self)

"""The widget gallery used by appliance control panels."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.graphics.bitmap import Color
from repro.graphics.region import Rect
from repro.toolkit.canvas import Canvas
from repro.toolkit.events import KeyPress, Pointer, PointerKind
from repro.toolkit.layout import Column
from repro.toolkit.theme import Theme
from repro.toolkit.widget import Bindable, Widget
from repro.uip import keysyms
from repro.util.errors import ToolkitError


class Spacer(Widget):
    """Invisible filler, typically given ``layout_stretch``."""

    def __init__(self, stretch: int = 1) -> None:
        super().__init__()
        self.layout_stretch = stretch

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        return (0, 0)


class Label(Widget):
    """Static text, optionally centred, optionally title-sized."""

    def __init__(self, text: str, centered: bool = False,
                 title: bool = False,
                 color: Optional[Color] = None) -> None:
        super().__init__()
        self._text = text
        self.centered = centered
        self.title = title
        self.color = color

    @property
    def text(self) -> str:
        return self._text

    @text.setter
    def text(self, value: str) -> None:
        if value != self._text:
            self._text = value
            self.invalidate()

    def _font(self, theme: Theme):
        return theme.title_font if self.title else theme.font

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        w, h = self._font(theme).measure(self._text)
        return (w + 2, h + 2)

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        color = self.color if self.color is not None else theme.text
        font = self._font(theme)
        local = Rect(0, 0, self.rect.w, self.rect.h)
        if self.centered:
            canvas.text_centered(local, self._text, color, font)
        else:
            h = font.measure(self._text)[1]
            canvas.text(1, max(0, (self.rect.h - h) // 2), self._text,
                        color, font)


class Button(Bindable):
    """Push button: click or Return/Space activates."""

    focusable = True

    def __init__(self, text: str,
                 on_click: Optional[Callable[[Widget], None]] = None) -> None:
        super().__init__()
        self._text = text
        self.on_activate = on_click
        self.pressed = False

    @property
    def text(self) -> str:
        return self._text

    @text.setter
    def text(self, value: str) -> None:
        if value != self._text:
            self._text = value
            self.invalidate()

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        w, h = theme.font.measure(self._text)
        return (w + 14, h + 10)

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        face = (theme.face_disabled if not self.enabled
                else theme.face_pressed if self.pressed else theme.face)
        canvas.bevel(local, face, theme.light, theme.shadow,
                     sunken=self.pressed)
        text_color = theme.text if self.enabled else theme.text_disabled
        canvas.text_centered(local, self._text, text_color, theme.font)
        if self.has_focus:
            canvas.outline(local.inset(2), theme.focus)

    def handle_pointer(self, event: Pointer) -> bool:
        if not self.enabled:
            return False
        if event.kind is PointerKind.DOWN:
            self.pressed = True
            self.request_focus()
            self.invalidate()
            return True
        if event.kind is PointerKind.UP:
            was_pressed = self.pressed
            self.pressed = False
            self.invalidate()
            inside = Rect(0, 0, self.rect.w, self.rect.h).contains_point(
                event.x, event.y)
            if was_pressed and inside:
                self.activate()
            return True
        return False

    def handle_key(self, event: KeyPress) -> bool:
        if event.keysym in (keysyms.RETURN, keysyms.SPACE):
            self.activate()
            return True
        return False


class ToggleButton(Bindable):
    """Two-state button (power switches, mute, etc.)."""

    focusable = True

    def __init__(self, text: str, value: bool = False,
                 on_change: Optional[Callable[[Widget], None]] = None) -> None:
        super().__init__()
        self.text = text
        self._value = value
        self.on_activate = on_change

    @property
    def value(self) -> bool:
        return self._value

    @value.setter
    def value(self, state: bool) -> None:
        if state != self._value:
            self._value = state
            self.invalidate()

    def toggle(self) -> None:
        if not self.enabled:
            return
        self._value = not self._value
        self.invalidate()
        if self.on_activate is not None:
            self.on_activate(self)

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        w, h = theme.font.measure(self.text)
        return (w + 14, h + 10)

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        face = theme.accent if self._value else theme.face
        text = theme.accent_text if self._value else theme.text
        if not self.enabled:
            face, text = theme.face_disabled, theme.text_disabled
        canvas.bevel(local, face, theme.light, theme.shadow,
                     sunken=self._value)
        canvas.text_centered(local, self.text, text, theme.font)
        if self.has_focus:
            canvas.outline(local.inset(2), theme.focus)

    def handle_pointer(self, event: Pointer) -> bool:
        if event.kind is PointerKind.DOWN and self.enabled:
            self.request_focus()
            self.toggle()
            return True
        return event.kind is PointerKind.UP

    def handle_key(self, event: KeyPress) -> bool:
        if event.keysym in (keysyms.RETURN, keysyms.SPACE):
            self.toggle()
            return True
        return False


class Slider(Bindable):
    """Horizontal value slider (volume, temperature, channel seek)."""

    focusable = True

    def __init__(self, minimum: int = 0, maximum: int = 100,
                 value: int = 0, step: int = 1,
                 on_change: Optional[Callable[[Widget], None]] = None) -> None:
        super().__init__()
        if maximum <= minimum:
            raise ToolkitError(f"slider range empty: [{minimum}, {maximum}]")
        if step < 1:
            raise ToolkitError(f"slider step must be >= 1: {step}")
        self.minimum = minimum
        self.maximum = maximum
        self.step = step
        self._value = max(minimum, min(maximum, value))
        self.on_activate = on_change
        self._dragging = False

    @property
    def value(self) -> int:
        return self._value

    @value.setter
    def value(self, new_value: int) -> None:
        clamped = max(self.minimum, min(self.maximum, int(new_value)))
        if clamped != self._value:
            self._value = clamped
            self.invalidate()

    def _set_and_notify(self, new_value: int) -> None:
        before = self._value
        self.value = new_value
        if self._value != before and self.on_activate is not None:
            self.on_activate(self)

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        return (80, 16)

    def _track_rect(self) -> Rect:
        return Rect(4, self.rect.h // 2 - 2, max(1, self.rect.w - 8), 4)

    def _value_to_x(self, value: int) -> int:
        track = self._track_rect()
        span = self.maximum - self.minimum
        return track.x + (value - self.minimum) * max(track.w - 1, 1) // span

    def _x_to_value(self, x: int) -> int:
        track = self._track_rect()
        span = self.maximum - self.minimum
        rel = min(max(x - track.x, 0), max(track.w - 1, 1))
        return self.minimum + round(rel * span / max(track.w - 1, 1))

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        canvas.fill(local, theme.face)
        track = self._track_rect()
        canvas.bevel(track, theme.well, theme.shadow, theme.light,
                     sunken=True)
        filled = Rect(track.x, track.y,
                      max(0, self._value_to_x(self._value) - track.x),
                      track.h)
        canvas.fill(filled, theme.accent)
        knob_x = self._value_to_x(self._value)
        knob = Rect(knob_x - 3, local.y + 2, 7, max(4, local.h - 4))
        canvas.bevel(knob, theme.face, theme.light, theme.shadow)
        if self.has_focus:
            canvas.outline(local, theme.focus)

    def handle_pointer(self, event: Pointer) -> bool:
        if not self.enabled:
            return False
        if event.kind is PointerKind.DOWN:
            self._dragging = True
            self.request_focus()
            self._set_and_notify(self._x_to_value(event.x))
            return True
        if event.kind is PointerKind.MOVE and self._dragging:
            self._set_and_notify(self._x_to_value(event.x))
            return True
        if event.kind is PointerKind.UP:
            self._dragging = False
            return True
        return False

    def handle_key(self, event: KeyPress) -> bool:
        if event.keysym == keysyms.LEFT:
            self._set_and_notify(self._value - self.step)
            return True
        if event.keysym == keysyms.RIGHT:
            self._set_and_notify(self._value + self.step)
            return True
        if event.keysym == keysyms.HOME:
            self._set_and_notify(self.minimum)
            return True
        if event.keysym == keysyms.END:
            self._set_and_notify(self.maximum)
            return True
        return False


class ProgressBar(Widget):
    """Read-only progress/level indicator."""

    def __init__(self, minimum: int = 0, maximum: int = 100,
                 value: int = 0) -> None:
        super().__init__()
        if maximum <= minimum:
            raise ToolkitError(f"progress range empty: [{minimum}, {maximum}]")
        self.minimum = minimum
        self.maximum = maximum
        self._value = max(minimum, min(maximum, value))

    @property
    def value(self) -> int:
        return self._value

    @value.setter
    def value(self, new_value: int) -> None:
        clamped = max(self.minimum, min(self.maximum, int(new_value)))
        if clamped != self._value:
            self._value = clamped
            self.invalidate()

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        return (80, 12)

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        canvas.bevel(local, theme.well, theme.shadow, theme.light,
                     sunken=True)
        span = self.maximum - self.minimum
        fraction = (self._value - self.minimum) / span
        inner = local.inset(2)
        filled = Rect(inner.x, inner.y, int(inner.w * fraction), inner.h)
        canvas.fill(filled, theme.accent)


class ListBox(Bindable):
    """Scrolling single-selection list (channel lists, source pickers)."""

    focusable = True

    def __init__(self, items: Sequence[str] = (),
                 on_select: Optional[Callable[[Widget], None]] = None) -> None:
        super().__init__()
        self._items = list(items)
        self.selected = 0 if items else -1
        self.scroll_top = 0
        self.on_activate = on_select

    @property
    def items(self) -> list[str]:
        return list(self._items)

    def set_items(self, items: Sequence[str]) -> None:
        self._items = list(items)
        self.selected = 0 if self._items else -1
        self.scroll_top = 0
        self.invalidate()

    @property
    def selected_item(self) -> Optional[str]:
        if 0 <= self.selected < len(self._items):
            return self._items[self.selected]
        return None

    def _row_height(self, theme: Theme) -> int:
        return theme.font.glyph_height + 4

    def _visible_rows(self, theme: Theme) -> int:
        return max(1, (self.rect.h - 4) // self._row_height(theme))

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        rows = min(max(len(self._items), 1), 6)
        width = 60
        for item in self._items:
            width = max(width, theme.font.measure(item)[0] + 12)
        return (width, rows * self._row_height(theme) + 4)

    def _select(self, index: int, theme_rows: int) -> None:
        if not self._items:
            return
        index = max(0, min(len(self._items) - 1, index))
        if index == self.selected:
            return
        self.selected = index
        if index < self.scroll_top:
            self.scroll_top = index
        elif index >= self.scroll_top + theme_rows:
            self.scroll_top = index - theme_rows + 1
        self.invalidate()
        if self.on_activate is not None:
            self.on_activate(self)

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        canvas.bevel(local, theme.well, theme.shadow, theme.light,
                     sunken=True)
        row_h = self._row_height(theme)
        visible = self._visible_rows(theme)
        for row in range(visible):
            index = self.scroll_top + row
            if index >= len(self._items):
                break
            item_rect = Rect(2, 2 + row * row_h, local.w - 4, row_h)
            if index == self.selected:
                canvas.fill(item_rect, theme.accent)
                color = theme.accent_text
            else:
                color = theme.text
            canvas.text(item_rect.x + 2,
                        item_rect.y + (row_h - theme.font.glyph_height) // 2,
                        self._items[index], color, theme.font)
        if self.has_focus:
            canvas.outline(local, theme.focus)

    def handle_pointer(self, event: Pointer) -> bool:
        if event.kind is not PointerKind.DOWN or not self.enabled:
            return event.kind is PointerKind.UP
        self.request_focus()
        # theme is not passed to input handlers; use the default row height
        # (fonts are fixed in this toolkit, so this is exact).
        from repro.toolkit.theme import DEFAULT_THEME
        row_h = self._row_height(DEFAULT_THEME)
        index = self.scroll_top + (event.y - 2) // row_h
        if 0 <= index < len(self._items):
            self._select(index, self._visible_rows(DEFAULT_THEME))
        return True

    def handle_key(self, event: KeyPress) -> bool:
        from repro.toolkit.theme import DEFAULT_THEME
        rows = self._visible_rows(DEFAULT_THEME)
        if event.keysym == keysyms.UP:
            self._select(self.selected - 1, rows)
            return True
        if event.keysym == keysyms.DOWN:
            self._select(self.selected + 1, rows)
            return True
        if event.keysym == keysyms.PAGE_UP:
            self._select(self.selected - rows, rows)
            return True
        if event.keysym == keysyms.PAGE_DOWN:
            self._select(self.selected + rows, rows)
            return True
        return False


class TextField(Bindable):
    """Single-line text entry (channel numbers, timer values).

    Printable keysyms insert at the cursor; Backspace/Delete edit;
    Left/Right/Home/End move; Return submits via ``on_activate``.
    """

    focusable = True

    def __init__(self, text: str = "", max_length: int = 32,
                 on_submit: Optional[Callable[[Widget], None]] = None
                 ) -> None:
        super().__init__()
        if max_length < 1:
            raise ToolkitError(f"max_length must be >= 1: {max_length}")
        self._text = text[:max_length]
        self.max_length = max_length
        self.cursor = len(self._text)
        self.on_activate = on_submit

    @property
    def text(self) -> str:
        return self._text

    @text.setter
    def text(self, value: str) -> None:
        value = value[:self.max_length]
        if value != self._text:
            self._text = value
            self.cursor = min(self.cursor, len(value))
            self.invalidate()

    def clear(self) -> None:
        self.text = ""
        self.cursor = 0

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        width = min(self.max_length, 12) * theme.font.advance + 10
        return (width, theme.font.glyph_height + 8)

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        canvas.bevel(local, theme.well, theme.shadow, theme.light,
                     sunken=True)
        text_y = (self.rect.h - theme.font.glyph_height) // 2
        canvas.text(4, text_y, self._text, theme.text, theme.font)
        if self.has_focus:
            cursor_x = 4 + self.cursor * theme.font.advance
            canvas.fill(Rect(cursor_x, 2, 1, self.rect.h - 4), theme.accent)
            canvas.outline(local, theme.focus)

    def handle_pointer(self, event: Pointer) -> bool:
        if event.kind is PointerKind.DOWN and self.enabled:
            self.request_focus()
            from repro.toolkit.theme import DEFAULT_THEME
            self.cursor = max(0, min(len(self._text),
                                     (event.x - 4)
                                     // DEFAULT_THEME.font.advance))
            self.invalidate()
            return True
        return event.kind is PointerKind.UP

    def handle_key(self, event: KeyPress) -> bool:
        if event.keysym == keysyms.RETURN:
            self.activate()
            return True
        if event.keysym == keysyms.BACKSPACE:
            if self.cursor > 0:
                self._text = (self._text[:self.cursor - 1]
                              + self._text[self.cursor:])
                self.cursor -= 1
                self.invalidate()
            return True
        if event.keysym == keysyms.DELETE:
            if self.cursor < len(self._text):
                self._text = (self._text[:self.cursor]
                              + self._text[self.cursor + 1:])
                self.invalidate()
            return True
        if event.keysym == keysyms.LEFT:
            self.cursor = max(0, self.cursor - 1)
            self.invalidate()
            return True
        if event.keysym == keysyms.RIGHT:
            self.cursor = min(len(self._text), self.cursor + 1)
            self.invalidate()
            return True
        if event.keysym == keysyms.HOME:
            self.cursor = 0
            self.invalidate()
            return True
        if event.keysym == keysyms.END:
            self.cursor = len(self._text)
            self.invalidate()
            return True
        char = event.char
        if char is not None and len(self._text) < self.max_length:
            self._text = (self._text[:self.cursor] + char
                          + self._text[self.cursor:])
            self.cursor += 1
            self.invalidate()
            return True
        return False


class Panel(Column):
    """A titled, bevelled grouping container (one appliance's panel)."""

    def __init__(self, title: str = "", **kwargs) -> None:
        super().__init__(**kwargs)
        self.title = title

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        w, h = super().preferred_size(theme)
        if self.title:
            tw, th = theme.font.measure(self.title)
            w = max(w, tw + 12)
            h += th + 4
        return (w, h)

    def perform_layout(self, theme: Theme) -> None:
        # Reserve a strip at the top for the title by shrinking ourselves
        # during child layout, then restoring.
        if not self.title:
            super().perform_layout(theme)
            return
        strip = theme.font.glyph_height + 4
        original = self.rect
        self.rect = Rect(original.x, original.y, original.w,
                         max(0, original.h - strip))
        super().perform_layout(theme)
        for child in self.children:
            child.rect = child.rect.translate(0, strip)
        self.rect = original

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        canvas.bevel(local, theme.face, theme.light, theme.shadow)
        if self.title:
            canvas.fill(Rect(1, 1, local.w - 2,
                             theme.font.glyph_height + 4), theme.accent)
            canvas.text(6, 3, self.title, theme.accent_text, theme.font)


class TabPanel(Widget):
    """Tab bar plus a content area showing one child page at a time.

    This is the paper's *composed GUI*: one page per currently available
    appliance, composition changing as appliances come and go.
    """

    focusable = True

    def __init__(self) -> None:
        super().__init__()
        self._titles: list[str] = []
        self.active = -1
        self.on_tab_change: Optional[Callable[[int], None]] = None

    def add_page(self, title: str, page: Widget) -> Widget:
        self.add(page)
        self._titles.append(title)
        if self.active < 0:
            self.active = 0
        self._sync_visibility()
        return page

    def remove_page(self, index: int) -> None:
        if not 0 <= index < len(self._titles):
            raise ToolkitError(f"no tab page {index}")
        page = self.children[index]
        self._titles.pop(index)
        self.remove(page)
        if self.active >= len(self._titles):
            self.active = len(self._titles) - 1
        self._sync_visibility()

    @property
    def titles(self) -> list[str]:
        return list(self._titles)

    @property
    def active_page(self) -> Optional[Widget]:
        if 0 <= self.active < len(self.children):
            return self.children[self.active]
        return None

    def set_active(self, index: int) -> None:
        if not self._titles:
            return
        index = max(0, min(len(self._titles) - 1, index))
        if index != self.active:
            self.active = index
            self._sync_visibility()
            if self.on_tab_change is not None:
                self.on_tab_change(index)

    def _sync_visibility(self) -> None:
        for i, child in enumerate(self.children):
            child.visible = (i == self.active)
        self.invalidate()

    def _tab_height(self, theme: Theme) -> int:
        return theme.font.glyph_height + 8

    def _tab_width(self, theme: Theme) -> int:
        if not self._titles:
            return 1
        return max(theme.font.measure(t)[0] + 12 for t in self._titles)

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        tab_h = self._tab_height(theme)
        width = self._tab_width(theme) * max(len(self._titles), 1)
        page_w, page_h = 0, 0
        for child in self.children:
            pw, ph = child.preferred_size(theme)
            page_w = max(page_w, pw)
            page_h = max(page_h, ph)
        return (max(width, page_w) + 4, tab_h + page_h + 4)

    def perform_layout(self, theme: Theme) -> None:
        tab_h = self._tab_height(theme)
        content = Rect(2, tab_h + 2, max(0, self.rect.w - 4),
                       max(0, self.rect.h - tab_h - 4))
        for child in self.children:
            child.rect = content
            child.perform_layout(theme)

    def paint(self, canvas: Canvas, theme: Theme) -> None:
        local = Rect(0, 0, self.rect.w, self.rect.h)
        canvas.fill(local, theme.background)
        tab_h = self._tab_height(theme)
        tab_w = self._tab_width(theme)
        for i, title in enumerate(self._titles):
            tab = Rect(i * tab_w, 0, tab_w, tab_h)
            active = (i == self.active)
            face = theme.face if active else theme.face_pressed
            canvas.bevel(tab, face, theme.light, theme.shadow,
                         sunken=not active)
            canvas.text_centered(tab, title, theme.text, theme.font)
        if self.has_focus and self._titles:
            canvas.outline(Rect(self.active * tab_w, 0, tab_w, tab_h),
                           theme.focus)

    def handle_pointer(self, event: Pointer) -> bool:
        from repro.toolkit.theme import DEFAULT_THEME
        if event.kind is not PointerKind.DOWN:
            return event.kind is PointerKind.UP
        tab_h = self._tab_height(DEFAULT_THEME)
        if event.y >= tab_h:
            return False
        tab_w = self._tab_width(DEFAULT_THEME)
        index = event.x // tab_w
        if 0 <= index < len(self._titles):
            self.request_focus()
            self.set_active(index)
            return True
        return False

    def handle_key(self, event: KeyPress) -> bool:
        if event.keysym == keysyms.LEFT:
            self.set_active(self.active - 1)
            return True
        if event.keysym == keysyms.RIGHT:
            self.set_active(self.active + 1)
            return True
        return False

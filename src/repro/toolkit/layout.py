"""Container widgets with deterministic box and grid layout."""

from __future__ import annotations

from repro.graphics.region import Rect
from repro.toolkit.theme import Theme
from repro.toolkit.widget import Widget
from repro.util.errors import ToolkitError


class _Box(Widget):
    """Shared machinery for Row and Column.

    Children receive their preferred size along the main axis; leftover
    space is divided among children with a positive ``stretch`` weight
    (stored on the child as ``layout_stretch``).  The cross axis fills.
    """

    axis = 0  # 0 = horizontal (Row), 1 = vertical (Column)

    def __init__(self, padding: int | None = None,
                 spacing: int | None = None) -> None:
        super().__init__()
        self.padding = padding
        self.spacing = spacing

    def _metrics(self, theme: Theme) -> tuple[int, int]:
        padding = self.padding if self.padding is not None else theme.padding
        spacing = self.spacing if self.spacing is not None else theme.spacing
        return padding, spacing

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        padding, spacing = self._metrics(theme)
        visible = [c for c in self.children if c.visible]
        main = 0
        cross = 0
        for child in visible:
            pw, ph = child.preferred_size(theme)
            size = (pw, ph)
            main += size[self.axis]
            cross = max(cross, size[1 - self.axis])
        if visible:
            main += spacing * (len(visible) - 1)
        main += 2 * padding
        cross += 2 * padding
        return (main, cross) if self.axis == 0 else (cross, main)

    def perform_layout(self, theme: Theme) -> None:
        padding, spacing = self._metrics(theme)
        visible = [c for c in self.children if c.visible]
        if not visible:
            return
        box = (self.rect.w, self.rect.h)
        main_total = box[self.axis] - 2 * padding
        cross_total = box[1 - self.axis] - 2 * padding
        main_total -= spacing * (len(visible) - 1)
        preferred = [child.preferred_size(theme) for child in visible]
        natural = [size[self.axis] for size in preferred]
        stretches = [max(0, getattr(child, "layout_stretch", 0))
                     for child in visible]
        leftover = main_total - sum(natural)
        total_stretch = sum(stretches)
        extras = [0] * len(visible)
        if leftover > 0 and total_stretch > 0:
            remaining = leftover
            for i, stretch in enumerate(stretches):
                share = leftover * stretch // total_stretch
                extras[i] = share
                remaining -= share
            # distribute rounding remainder to the first stretchy children
            i = 0
            while remaining > 0 and total_stretch > 0:
                if stretches[i % len(visible)] > 0:
                    extras[i % len(visible)] += 1
                    remaining -= 1
                i += 1
        offset = padding
        for child, size, extra in zip(visible, natural, extras):
            main_size = max(0, size + extra)
            if self.axis == 0:
                child.rect = Rect(offset, padding, main_size,
                                  max(0, cross_total))
            else:
                child.rect = Rect(padding, offset, max(0, cross_total),
                                  main_size)
            offset += main_size + spacing
            child.perform_layout(theme)


class Row(_Box):
    """Lays children out left to right."""

    axis = 0


class Column(_Box):
    """Lays children out top to bottom."""

    axis = 1


class Grid(Widget):
    """Fixed-column grid; cells get equal widths, rows take the tallest
    preferred height in that row."""

    def __init__(self, columns: int, padding: int | None = None,
                 spacing: int | None = None) -> None:
        super().__init__()
        if columns < 1:
            raise ToolkitError(f"grid needs at least one column: {columns}")
        self.columns = columns
        self.padding = padding
        self.spacing = spacing

    def _metrics(self, theme: Theme) -> tuple[int, int]:
        padding = self.padding if self.padding is not None else theme.padding
        spacing = self.spacing if self.spacing is not None else theme.spacing
        return padding, spacing

    def _rows(self) -> list[list[Widget]]:
        visible = [c for c in self.children if c.visible]
        return [visible[i:i + self.columns]
                for i in range(0, len(visible), self.columns)]

    def preferred_size(self, theme: Theme) -> tuple[int, int]:
        padding, spacing = self._metrics(theme)
        rows = self._rows()
        if not rows:
            return (2 * padding, 2 * padding)
        col_width = 0
        height = 0
        for row in rows:
            for child in row:
                col_width = max(col_width, child.preferred_size(theme)[0])
            height += max(child.preferred_size(theme)[1] for child in row)
        width = self.columns * col_width + (self.columns - 1) * spacing
        height += spacing * (len(rows) - 1)
        return (width + 2 * padding, height + 2 * padding)

    def perform_layout(self, theme: Theme) -> None:
        padding, spacing = self._metrics(theme)
        rows = self._rows()
        if not rows:
            return
        inner_w = self.rect.w - 2 * padding - (self.columns - 1) * spacing
        col_w = max(1, inner_w // self.columns)
        y = padding
        for row in rows:
            row_h = max(child.preferred_size(theme)[1] for child in row)
            for i, child in enumerate(row):
                x = padding + i * (col_w + spacing)
                child.rect = Rect(x, y, col_w, row_h)
                child.perform_layout(theme)
            y += row_h + spacing

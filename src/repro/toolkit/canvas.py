"""Clipped, translated painting surface handed to widgets.

A widget paints in its own local coordinates; the :class:`Canvas` applies
the widget's absolute origin and clips everything against the widget's
visible rectangle, so a widget can never scribble outside itself.
"""

from __future__ import annotations

from repro.graphics import draw
from repro.graphics.bitmap import Bitmap, Color
from repro.graphics.font import Font
from repro.graphics.region import Rect


class Canvas:
    """Drawing adapter: local coordinates -> clipped bitmap operations."""

    def __init__(self, bitmap: Bitmap, origin_x: int, origin_y: int,
                 clip: Rect) -> None:
        self._bitmap = bitmap
        self._ox = origin_x
        self._oy = origin_y
        self._clip = clip.intersect(bitmap.bounds)

    def offset(self, rect: Rect) -> "Canvas":
        """A sub-canvas for a child occupying ``rect`` (local coords)."""
        absolute = rect.translate(self._ox, self._oy)
        return Canvas(self._bitmap, absolute.x, absolute.y,
                      absolute.intersect(self._clip))

    @property
    def clip(self) -> Rect:
        return self._clip

    def _abs(self, rect: Rect) -> Rect:
        return rect.translate(self._ox, self._oy).intersect(self._clip)

    # -- primitives -----------------------------------------------------------

    def fill(self, rect: Rect, color: Color) -> None:
        clipped = self._abs(rect)
        if not clipped.is_empty:
            self._bitmap.fill_rect(clipped, color)

    def outline(self, rect: Rect, color: Color, thickness: int = 1) -> None:
        # Outlines must clip per-edge; draw into a clipped world rect only
        # when fully visible, else fall back to edge fills.
        absolute = rect.translate(self._ox, self._oy)
        if self._clip.contains_rect(absolute):
            draw.rect_outline(self._bitmap, absolute, color, thickness)
            return
        for i in range(thickness):
            inner = rect.inset(i)
            if inner.is_empty:
                return
            self.fill(Rect(inner.x, inner.y, inner.w, 1), color)
            self.fill(Rect(inner.x, inner.y2 - 1, inner.w, 1), color)
            self.fill(Rect(inner.x, inner.y, 1, inner.h), color)
            self.fill(Rect(inner.x2 - 1, inner.y, 1, inner.h), color)

    def bevel(self, rect: Rect, face: Color, light: Color, shadow: Color,
              sunken: bool = False) -> None:
        self.fill(rect, face)
        if rect.w < 2 or rect.h < 2:
            return
        top_left = shadow if sunken else light
        bottom_right = light if sunken else shadow
        self.fill(Rect(rect.x, rect.y, rect.w, 1), top_left)
        self.fill(Rect(rect.x, rect.y, 1, rect.h), top_left)
        self.fill(Rect(rect.x, rect.y2 - 1, rect.w, 1), bottom_right)
        self.fill(Rect(rect.x2 - 1, rect.y, 1, rect.h), bottom_right)

    def text(self, x: int, y: int, string: str, color: Color,
             font: Font) -> None:
        if not string:
            return
        target = Rect(x, y, *font.measure(string)).translate(self._ox,
                                                             self._oy)
        visible = target.intersect(self._clip)
        if visible.is_empty:
            return
        if visible == target:
            font.draw(self._bitmap, target.x, target.y, string, color)
            return
        # Partially visible: render off-screen over a snapshot of the
        # visible pixels, then blit only the visible patch back.
        patch_x = visible.x - target.x
        patch_y = visible.y - target.y
        scratch = Bitmap(max(target.w, 1), max(target.h, 1))
        scratch.blit(self._bitmap.crop(visible), patch_x, patch_y)
        font.draw(scratch, 0, 0, string, color)
        patch = scratch.crop(Rect(patch_x, patch_y, visible.w, visible.h))
        self._bitmap.blit(patch, visible.x, visible.y)

    def text_centered(self, rect: Rect, string: str, color: Color,
                      font: Font) -> None:
        w, h = font.measure(string)
        self.text(rect.x + (rect.w - w) // 2, rect.y + (rect.h - h) // 2,
                  string, color, font)

    def hline(self, x: int, y: int, length: int, color: Color) -> None:
        self.fill(Rect(x, y, max(length, 0), 1), color)

    def vline(self, x: int, y: int, length: int, color: Color) -> None:
        self.fill(Rect(x, y, 1, max(length, 0)), color)

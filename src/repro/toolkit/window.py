"""The UI window: root of a widget tree bound to a bitmap.

A :class:`UIWindow` is what an appliance application owns.  It:

* lays the widget tree out and paints it into its :class:`Bitmap`,
* tracks damage as a :class:`~repro.graphics.Region` so the UniInt server
  can send incremental updates,
* routes universal input events (keys, pointer) into the tree, handling
  keyboard focus traversal (Tab / Shift-Tab) and pointer capture.
"""

from __future__ import annotations

from typing import Optional

from repro.graphics.bitmap import Bitmap
from repro.graphics.region import Rect, Region
from repro.toolkit.canvas import Canvas
from repro.toolkit.events import KeyPress, Pointer, PointerKind
from repro.toolkit.theme import DEFAULT_THEME, Theme
from repro.toolkit.widget import Widget
from repro.uip import keysyms
from repro.util.errors import ToolkitError


class UIWindow:
    """A top-level window: bitmap + widget tree + focus + damage."""

    def __init__(self, width: int, height: int, title: str = "",
                 theme: Theme = DEFAULT_THEME) -> None:
        self.title = title
        self.theme = theme
        self.bitmap = Bitmap(width, height, fill=theme.background)
        self.damage = Region([self.bitmap.bounds])
        self.root: Optional[Widget] = None
        self.focus: Optional[Widget] = None
        self._pointer_grab: Optional[Widget] = None
        self._shift_down = False
        #: Fired whenever damage is added; the window system hooks this so
        #: out-of-band UI changes (appliance events) propagate to thin
        #: clients without an input event to trigger them.
        self.on_damage = None

    def _ping_damage(self) -> None:
        if self.on_damage is not None:
            self.on_damage()

    # -- tree management ---------------------------------------------------

    def set_root(self, root: Widget) -> None:
        if self.root is not None:
            self.root.teardown()
            self.root.attach_window(None)
        self.root = root
        root.attach_window(self)
        self.focus = None
        self._pointer_grab = None
        self.layout()
        self.focus_next()

    def layout(self) -> None:
        """Re-run layout over the whole tree and damage everything."""
        if self.root is None:
            return
        self.root.rect = self.bitmap.bounds
        self.root.perform_layout(self.theme)
        self.damage.add(self.bitmap.bounds)
        self._ping_damage()

    def resize(self, width: int, height: int) -> None:
        self.bitmap = Bitmap(width, height, fill=self.theme.background)
        self.damage = Region([self.bitmap.bounds])
        self.layout()

    def forget_widget(self, widget: Widget) -> None:
        """Drop focus/grab references into a subtree being removed."""
        doomed = set(widget.walk())
        if self.focus in doomed:
            self.focus = None
        if self._pointer_grab in doomed:
            self._pointer_grab = None

    # -- damage & painting -------------------------------------------------------

    def damage_widget(self, widget: Widget) -> None:
        self.damage.add(widget.abs_rect().intersect(self.bitmap.bounds))
        self._ping_damage()

    def render(self) -> Region:
        """Repaint damaged areas; returns the region that changed.

        The whole tree is painted through a canvas clipped to the damage
        bounds — correct and simple; panels are small enough that damage-
        bounded painting is not the bottleneck (the encoders are).
        """
        if self.damage.is_empty:
            return Region()
        painted = self.damage
        self.damage = Region()
        clip = painted.bounds()
        self.bitmap.fill_rect(clip, self.theme.background)
        if self.root is not None:
            canvas = Canvas(self.bitmap, self.root.rect.x, self.root.rect.y,
                            clip)
            self.root.paint_tree(canvas, self.theme)
        return painted

    # -- focus ---------------------------------------------------------------------

    def _focus_order(self) -> list[Widget]:
        if self.root is None:
            return []
        order = []
        for widget in self.root.walk():
            if widget.focusable and widget.visible and widget.enabled:
                # ancestors must be visible too
                node = widget.parent
                hidden = False
                while node is not None:
                    if not node.visible:
                        hidden = True
                        break
                    node = node.parent
                if not hidden:
                    order.append(widget)
        return order

    def set_focus(self, widget: Optional[Widget]) -> None:
        if widget is self.focus:
            return
        if widget is not None and widget.window is not self:
            raise ToolkitError("widget belongs to another window")
        if self.focus is not None:
            self.focus.has_focus = False
            self.focus.invalidate()
        self.focus = widget
        if widget is not None:
            widget.has_focus = True
            widget.invalidate()

    def focus_next(self) -> Optional[Widget]:
        return self._advance_focus(+1)

    def focus_previous(self) -> Optional[Widget]:
        return self._advance_focus(-1)

    def _advance_focus(self, direction: int) -> Optional[Widget]:
        order = self._focus_order()
        if not order:
            self.set_focus(None)
            return None
        if self.focus not in order:
            target = order[0 if direction > 0 else -1]
        else:
            index = order.index(self.focus)
            target = order[(index + direction) % len(order)]
        self.set_focus(target)
        return target

    # -- input routing -------------------------------------------------------------

    def dispatch_key_event(self, keysym: int, down: bool) -> bool:
        """Entry point for universal key events (tracks shift state)."""
        if keysym in (keysyms.SHIFT_L, keysyms.SHIFT_R):
            self._shift_down = down
            return True
        if not down:
            return True  # releases handled, not routed
        return self.dispatch_key(KeyPress(keysym))

    def dispatch_key(self, event: KeyPress) -> bool:
        if event.keysym == keysyms.TAB:
            if self._shift_down:
                self.focus_previous()
            else:
                self.focus_next()
            return True
        node = self.focus
        while node is not None:
            if node.handle_key(event):
                return True
            node = node.parent
        return False

    def dispatch_pointer(self, event: Pointer) -> bool:
        """Route a pointer event (window coordinates) into the tree."""
        if self.root is None:
            return False
        if self._pointer_grab is not None:
            target = self._pointer_grab
        else:
            target = self.root.hit_test(event.x - self.root.rect.x,
                                        event.y - self.root.rect.y)
            if target is None:
                return False
        origin = target.abs_rect()
        local = Pointer(event.kind, event.x - origin.x, event.y - origin.y,
                        event.buttons)
        consumed = False
        node: Optional[Widget] = target
        while node is not None:
            if node.handle_pointer(local):
                consumed = True
                target = node
                break
            shift = node.rect
            local = local.translated(shift.x, shift.y)
            node = node.parent
        if event.kind is PointerKind.DOWN and consumed:
            self._pointer_grab = target
        elif event.kind is PointerKind.UP:
            self._pointer_grab = None
        return consumed

    # -- convenience for tests and examples ---------------------------------------

    def click(self, x: int, y: int) -> None:
        """Synthesises a full press/release at (x, y)."""
        self.dispatch_pointer(Pointer(PointerKind.DOWN, x, y, 1))
        self.dispatch_pointer(Pointer(PointerKind.UP, x, y, 0))

    def press_key(self, keysym: int) -> None:
        self.dispatch_key_event(keysym, True)
        self.dispatch_key_event(keysym, False)

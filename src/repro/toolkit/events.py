"""Toolkit-level input events.

The window system translates universal interaction protocol events
(:class:`~repro.uip.messages.KeyEvent`, ``PointerEvent``) into these before
routing them into the widget tree.  Coordinates are window-local.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.uip import keysyms


class PointerKind(enum.Enum):
    DOWN = "down"
    UP = "up"
    MOVE = "move"


@dataclass(frozen=True)
class Pointer:
    """A pointer transition at (x, y) with the post-event button mask."""

    kind: PointerKind
    x: int
    y: int
    buttons: int = 0

    def translated(self, dx: int, dy: int) -> "Pointer":
        return Pointer(self.kind, self.x + dx, self.y + dy, self.buttons)


@dataclass(frozen=True)
class KeyPress:
    """A key press (releases are filtered out before widgets see keys)."""

    keysym: int

    @property
    def char(self) -> str | None:
        return keysyms.char_for_keysym(self.keysym)

    @property
    def name(self) -> str:
        return keysyms.name_for_keysym(self.keysym)

"""Widget toolkit — the reproduction's stand-in for Java AWT / GTK+ / Qt.

The paper's key transparency claim (§2.1, third characteristic) is that
appliance applications keep using a *traditional* GUI toolkit and gain
universal interaction for free, because the toolkit renders to a framebuffer
and consumes keyboard/mouse events — exactly the universal event vocabulary.

This package provides that traditional toolkit: a retained widget tree
(buttons, labels, sliders, toggles, lists, tabs) with box/grid layout,
keyboard focus traversal, pointer capture and damage tracking, painting into
a :class:`~repro.graphics.Bitmap` through a clipped :class:`Canvas`.
"""

from repro.toolkit.canvas import Canvas
from repro.toolkit.events import KeyPress, Pointer, PointerKind
from repro.toolkit.theme import DEFAULT_THEME, Theme
from repro.toolkit.widget import Widget
from repro.toolkit.layout import Column, Grid, Row
from repro.toolkit.widgets import (
    Button,
    Label,
    ListBox,
    Panel,
    ProgressBar,
    Slider,
    Spacer,
    TabPanel,
    TextField,
    ToggleButton,
)
from repro.toolkit.window import UIWindow

__all__ = [
    "Button",
    "Canvas",
    "Column",
    "DEFAULT_THEME",
    "Grid",
    "KeyPress",
    "Label",
    "ListBox",
    "Panel",
    "Pointer",
    "PointerKind",
    "ProgressBar",
    "Row",
    "Slider",
    "Spacer",
    "TabPanel",
    "TextField",
    "Theme",
    "ToggleButton",
    "UIWindow",
    "Widget",
]

"""Simulated networked home appliances.

These stand in for the physical TV/VCR/white goods of the paper's home: each
appliance is a bus device that manufactures its own HAVi DCM, whose FCMs
implement genuine state machines (tape transports with motion-dependent
counters, microwave timers that fire on the virtual clock, air conditioners
whose room temperature drifts toward the target).

The home appliance application never sees these classes — it discovers them
through the HAVi registry and drives them with FCM commands, exactly as it
would drive real hardware.
"""

from repro.appliances.base import Appliance
from repro.appliances.tv import Television, TunerFcm, DisplayFcm
from repro.appliances.vcr import VideoRecorder, VcrTransportFcm
from repro.appliances.audio import Amplifier, AmplifierFcm
from repro.appliances.dvd import DvdPlayer, AvDiscFcm
from repro.appliances.aircon import AirConditioner, AirconFcm
from repro.appliances.fridge import Refrigerator, RefrigeratorFcm
from repro.appliances.light import DimmableLight, LightFcm
from repro.appliances.microwave import MicrowaveOven, MicrowaveFcm

#: Every appliance model offered by the simulated home, keyed by class name.
APPLIANCE_CLASSES = {
    "tv": Television,
    "vcr": VideoRecorder,
    "amplifier": Amplifier,
    "dvd": DvdPlayer,
    "aircon": AirConditioner,
    "light": DimmableLight,
    "microwave": MicrowaveOven,
    "fridge": Refrigerator,
}

__all__ = [
    "APPLIANCE_CLASSES",
    "AirConditioner",
    "AirconFcm",
    "Amplifier",
    "AmplifierFcm",
    "Appliance",
    "AvDiscFcm",
    "DimmableLight",
    "DisplayFcm",
    "DvdPlayer",
    "LightFcm",
    "MicrowaveFcm",
    "MicrowaveOven",
    "Refrigerator",
    "RefrigeratorFcm",
    "Television",
    "TunerFcm",
    "VcrTransportFcm",
    "VideoRecorder",
]

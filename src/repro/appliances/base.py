"""Appliance base class: bus identity + DCM manufacturing."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.havi.bus import DeviceInfo
from repro.havi.dcm import Dcm
from repro.util.ids import guid_from_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.havi.manager import HomeNetwork


class Appliance:
    """A simulated physical device that can join the home bus.

    Subclasses define the identity plate (class attributes) and implement
    :meth:`build_fcms` to populate the DCM.  GUIDs derive from model + unit
    number, so the same appliance always gets the same address.
    """

    device_class = "generic"
    manufacturer = "ReproWorks"
    model = "GEN-1"

    def __init__(self, name: str, unit: int = 1) -> None:
        self.name = name
        self.unit = unit
        guid = guid_from_seed(f"{self.manufacturer}/{self.model}/{unit}")
        self.info = DeviceInfo(
            guid=guid,
            device_class=self.device_class,
            manufacturer=self.manufacturer,
            model=self.model,
            name=name,
        )
        self.dcm: Optional[Dcm] = None

    @property
    def guid(self) -> str:
        return self.info.guid

    def create_dcm(self, network: "HomeNetwork") -> Dcm:
        """Manufacture this appliance's DCM (called by the DCM manager)."""
        dcm = Dcm(
            guid=self.guid,
            messaging=network.messaging,
            events=network.events,
            registry=network.registry,
            device_class=self.device_class,
            manufacturer=self.manufacturer,
            model=self.model,
            name=self.name,
        )
        self.build_fcms(dcm, network)
        self.dcm = dcm
        return dcm

    def build_fcms(self, dcm: Dcm, network: "HomeNetwork") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} guid={self.guid[:8]}>"

"""Refrigerator: the descriptor-only appliance.

This is the proof point for capability-driven UI: the refrigerator ships
*no* panel builder and *no* DDI spec.  Every surface — the GUI panel with
one labelled section per component, the DDI tree, the generic fallback —
is generated from the capability descriptor below.  It is also the only
multi-component FCM in the home: one FCM handle, three physical
compartments (fridge, freezer, ice maker).
"""

from __future__ import annotations

from repro.appliances.base import Appliance
from repro.havi.fcm import Fcm, FcmCommandError, FcmType

FRIDGE_MIN, FRIDGE_MAX = 1, 7
FREEZER_MIN, FREEZER_MAX = -24, -16
ICE_MODES = ("off", "normal", "fast")


class RefrigeratorFcm(Fcm):
    """Three compartments behind a single FCM, all capability-declared."""

    fcm_type = FcmType.REFRIGERATOR

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.declare_text("fridge-temp", attribute="fridge_temp",
                          initial=4, fmt="{value}C", label="Temp",
                          component="fridge")
        self.declare_range("fridge-target", FRIDGE_MIN, FRIDGE_MAX,
                           command="fridge.temp.set", arg="temp",
                           handler=self._cmd_fridge_temp,
                           attribute="fridge_target", initial=4,
                           unit="C", label="Set", component="fridge")
        self.declare_switch("quick-cool", command="fridge.quick_cool.set",
                            handler=self._cmd_quick_cool, initial=False,
                            label="Quick cool", component="fridge")
        self.declare_text("freezer-temp", attribute="freezer_temp",
                          initial=-18, fmt="{value}C", label="Temp",
                          component="freezer")
        self.declare_range("freezer-target", FREEZER_MIN, FREEZER_MAX,
                           command="freezer.temp.set", arg="temp",
                           handler=self._cmd_freezer_temp,
                           attribute="freezer_target", initial=-18,
                           unit="C", label="Set", component="freezer")
        self.declare_choice("ice-mode", ICE_MODES, command="ice.mode.set",
                            arg="mode", handler=self._cmd_ice_mode,
                            initial="normal", label="Ice",
                            component="icemaker")
        self.declare_progress("ice-level", 0, 100, attribute="ice_level",
                              initial=60, unit="%", label="Bin",
                              component="icemaker")
        self.declare_button("ice-dispense", command="ice.dispense",
                            handler=self._cmd_dispense, label="Dispense",
                            component="icemaker")
        # the compressor never turns off: no power switch on purpose
        self.init_state("power", True)

    def _cmd_fridge_temp(self, payload: dict) -> dict:
        temp = int(self.require_arg(payload, "temp"))
        if not FRIDGE_MIN <= temp <= FRIDGE_MAX:
            raise FcmCommandError(
                "EINVALID_ARG",
                f"fridge target {temp} outside {FRIDGE_MIN}..{FRIDGE_MAX}")
        self.set_state("fridge_target", temp)
        self.set_state("fridge_temp", temp)
        return {"fridge_target": temp}

    def _cmd_freezer_temp(self, payload: dict) -> dict:
        temp = int(self.require_arg(payload, "temp"))
        if not FREEZER_MIN <= temp <= FREEZER_MAX:
            raise FcmCommandError(
                "EINVALID_ARG",
                f"freezer target {temp} outside "
                f"{FREEZER_MIN}..{FREEZER_MAX}")
        self.set_state("freezer_target", temp)
        self.set_state("freezer_temp", temp)
        return {"freezer_target": temp}

    def _cmd_quick_cool(self, payload: dict) -> dict:
        on = bool(self.require_arg(payload, "on"))
        self.set_state("quick-cool", on)
        return {"quick-cool": on}

    def _cmd_ice_mode(self, payload: dict) -> dict:
        mode = str(self.require_arg(payload, "mode"))
        if mode not in ICE_MODES:
            raise FcmCommandError("EINVALID_ARG",
                                  f"ice mode {mode!r} not in {ICE_MODES}")
        self.set_state("ice-mode", mode)
        return {"ice-mode": mode}

    def _cmd_dispense(self, payload: dict) -> dict:
        level = max(0, int(self.get_state("ice_level")) - 10)
        self.set_state("ice_level", level)
        return {"ice_level": level}


class Refrigerator(Appliance):
    """A kitchen refrigerator with freezer and ice maker."""

    device_class = "refrigerator"
    model = "FR-450"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(RefrigeratorFcm)

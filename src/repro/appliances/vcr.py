"""Video cassette recorder: transport FCM with a motion-dependent counter."""

from __future__ import annotations

from repro.appliances.base import Appliance
from repro.appliances.tv import TunerFcm
from repro.havi.fcm import Fcm, FcmCommandError, FcmType

#: Tape counter speed per transport mode, in counter units per second.
_COUNTER_RATES = {
    "stop": 0.0,
    "pause": 0.0,
    "play": 1.0,
    "record": 1.0,
    "ff": 8.0,
    "rew": -8.0,
}

#: Simulated tape length in counter units (one hour tape).
TAPE_LENGTH = 3600.0


class VcrTransportFcm(Fcm):
    """The tape deck.

    The counter is *lazy*: instead of periodic tick events (which would keep
    the scheduler eternally busy), the FCM stores the counter value at the
    last transport change and integrates the current mode's rate on demand.
    """

    fcm_type = FcmType.VCR

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.declare_switch("power", command="power.set",
                            handler=self._cmd_power, initial=False,
                            label="Power")
        self.declare_text("transport", initial="stop", label="Transport")
        self.declare_progress("counter", 0, int(TAPE_LENGTH),
                              initial=0.0, label="Counter")
        self.declare_button("rew", command="transport.rew",
                            handler=self._cmd_rew, label="<<")
        self.declare_button("play", command="transport.play",
                            handler=self._cmd_play, label=">")
        self.declare_button("pause", command="transport.pause",
                            handler=self._cmd_pause, label="||")
        self.declare_button("stop", command="transport.stop",
                            handler=self._cmd_stop, label="[]")
        self.declare_button("ff", command="transport.ff",
                            handler=self._cmd_ff, label=">>")
        self.declare_button("record", command="transport.record",
                            handler=self._cmd_record, label="REC")
        self.declare_button("eject", command="tape.eject",
                            handler=self._cmd_eject, label="Eject")
        self.init_state("tape_loaded", True)
        self._counter_base = 0.0
        self._counter_mark = self._now()
        self.add_plug("video-out", "out")
        self.register_command("tape.load", self._cmd_load)
        self.register_command("counter.get", self._cmd_counter)
        self.register_command("counter.reset", self._cmd_counter_reset)

    # -- counter model ------------------------------------------------------

    def _now(self) -> float:
        return self.messaging.scheduler.now()

    def counter(self) -> float:
        """Current tape position, integrating motion since the last mark."""
        rate = _COUNTER_RATES[str(self.get_state("transport"))]
        elapsed = self._now() - self._counter_mark
        value = self._counter_base + rate * elapsed
        return max(0.0, min(TAPE_LENGTH, value))

    def _set_transport(self, mode: str) -> dict:
        # freeze the counter at the moment of transition
        self._counter_base = self.counter()
        self._counter_mark = self._now()
        self.set_state("counter", round(self._counter_base, 1))
        self.set_state("transport", mode)
        return {"transport": mode, "counter": self._counter_base}

    # -- guards ---------------------------------------------------------------

    def _require_tape(self) -> None:
        if not self.get_state("tape_loaded"):
            raise FcmCommandError("ENO_MEDIA", "no tape in the deck")

    # -- commands ----------------------------------------------------------------

    def _cmd_power(self, payload: dict) -> dict:
        on = bool(self.require_arg(payload, "on"))
        if not on and self.get_state("transport") != "stop":
            self._set_transport("stop")
        self.set_state("power", on)
        return {"power": on}

    def _cmd_play(self, payload: dict) -> dict:
        self.require_power()
        self._require_tape()
        return self._set_transport("play")

    def _cmd_stop(self, payload: dict) -> dict:
        self.require_power()
        return self._set_transport("stop")

    def _cmd_pause(self, payload: dict) -> dict:
        self.require_power()
        if self.get_state("transport") not in ("play", "record"):
            raise FcmCommandError("EINVALID_STATE",
                                  "pause only valid while playing/recording")
        return self._set_transport("pause")

    def _cmd_record(self, payload: dict) -> dict:
        self.require_power()
        self._require_tape()
        return self._set_transport("record")

    def _cmd_ff(self, payload: dict) -> dict:
        self.require_power()
        self._require_tape()
        return self._set_transport("ff")

    def _cmd_rew(self, payload: dict) -> dict:
        self.require_power()
        self._require_tape()
        return self._set_transport("rew")

    def _cmd_eject(self, payload: dict) -> dict:
        self._require_tape()
        if self.get_state("transport") != "stop":
            self._set_transport("stop")
        self.set_state("tape_loaded", False)
        return {"tape_loaded": False}

    def _cmd_load(self, payload: dict) -> dict:
        if self.get_state("tape_loaded"):
            raise FcmCommandError("EINVALID_STATE", "a tape is already in")
        self.set_state("tape_loaded", True)
        self._counter_base = 0.0
        self._counter_mark = self._now()
        self.set_state("counter", 0.0)
        return {"tape_loaded": True}

    def _cmd_counter(self, payload: dict) -> dict:
        value = round(self.counter(), 1)
        self.set_state("counter", value)
        return {"counter": value}

    def _cmd_counter_reset(self, payload: dict) -> dict:
        self._counter_base = 0.0
        self._counter_mark = self._now()
        self.set_state("counter", 0.0)
        return {"counter": 0.0}


class VideoRecorder(Appliance):
    """A VHS deck with its own broadcast tuner."""

    device_class = "vcr"
    model = "VHS-9000"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(VcrTransportFcm)
        dcm.add_fcm(TunerFcm)

"""Television: a tuner FCM plus a display FCM."""

from __future__ import annotations

from repro.appliances.base import Appliance
from repro.havi.fcm import Fcm, FcmCommandError, FcmType

#: Broadcast channels available in the simulated neighbourhood.
CHANNEL_NAMES = {
    1: "NHK General",
    3: "NHK Education",
    4: "Nittele",
    6: "TBS",
    8: "Fuji TV",
    10: "TV Asahi",
    12: "TV Tokyo",
}

MAX_CHANNEL = 12
INPUT_SOURCES = ("tuner", "vcr", "dvd")


class TunerFcm(Fcm):
    """Power, channel and volume control."""

    fcm_type = FcmType.TUNER

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # capability declarations double as state init + command
        # registration; their order is the order surfaces render them in
        self.declare_switch("power", command="power.set",
                            handler=self._cmd_power, initial=False,
                            label="Power")
        # the label shows "CH <n> <name>"; the raw station name stays a
        # separate state key for applications that want it un-formatted
        self.declare_text("station", attribute="station_text",
                          initial=f"CH 1 {CHANNEL_NAMES[1]}",
                          label="Station")
        self.init_state("station", CHANNEL_NAMES[1])
        self.declare_button("ch-down", command="channel.down",
                            handler=self._cmd_channel_down, label="CH-")
        self.declare_button("ch-up", command="channel.up",
                            handler=self._cmd_channel_up, label="CH+")
        self.declare_number("ch-entry", 1, MAX_CHANNEL,
                            command="channel.set", arg="channel",
                            handler=self._cmd_channel_set,
                            attribute="channel", initial=1, label="CH")
        self.declare_range("volume", 0, 100, command="volume.set",
                           arg="volume", step=5,
                           handler=self._cmd_volume, initial=20,
                           label="Vol")
        self.declare_switch("mute", command="mute.set",
                            handler=self._cmd_mute, initial=False,
                            label="Mute")
        self.add_plug("tuner-out", "out")

    def _cmd_power(self, payload: dict) -> dict:
        on = bool(self.require_arg(payload, "on"))
        self.set_state("power", on)
        return {"power": on}

    def _tune(self, channel: int) -> dict:
        if not 1 <= channel <= MAX_CHANNEL:
            raise FcmCommandError(
                "EINVALID_ARG", f"channel {channel} outside 1..{MAX_CHANNEL}")
        name = CHANNEL_NAMES.get(channel, "---")
        self.set_state("channel", channel)
        self.set_state("station", name)
        self.set_state("station_text", f"CH {channel} {name}")
        return {"channel": channel}

    def _cmd_channel_set(self, payload: dict) -> dict:
        self.require_power()
        return self._tune(int(self.require_arg(payload, "channel")))

    def _step_channel(self, direction: int) -> dict:
        self.require_power()
        current = int(self.get_state("channel"))
        candidates = sorted(CHANNEL_NAMES)
        if direction > 0:
            higher = [c for c in candidates if c > current]
            target = higher[0] if higher else candidates[0]
        else:
            lower = [c for c in candidates if c < current]
            target = lower[-1] if lower else candidates[-1]
        return self._tune(target)

    def _cmd_channel_up(self, payload: dict) -> dict:
        return self._step_channel(+1)

    def _cmd_channel_down(self, payload: dict) -> dict:
        return self._step_channel(-1)

    def _cmd_volume(self, payload: dict) -> dict:
        self.require_power()
        volume = int(self.require_arg(payload, "volume"))
        if not 0 <= volume <= 100:
            raise FcmCommandError("EINVALID_ARG",
                                  f"volume {volume} outside 0..100")
        self.set_state("volume", volume)
        if volume > 0:
            self.set_state("mute", False)
        return {"volume": volume}

    def _cmd_mute(self, payload: dict) -> dict:
        self.require_power()
        mute = bool(self.require_arg(payload, "on"))
        self.set_state("mute", mute)
        return {"mute": mute}


class DisplayFcm(Fcm):
    """The panel: input source selection and picture settings.

    Declares an AV input plug: when the stream manager connects a VCR or
    DVD output here, the display retunes its source automatically.
    """

    fcm_type = FcmType.DISPLAY

    #: Stream source FCM type -> display source name.
    _PLUG_SOURCES = {"vcr": "vcr", "av_disc": "dvd", "tuner": "tuner"}

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.declare_choice("source", INPUT_SOURCES, command="source.set",
                            arg="source", handler=self._cmd_source,
                            initial="tuner", label="Source")
        self.declare_range("brightness", 0, 100,
                           command="brightness.set", arg="brightness",
                           step=10, handler=self._cmd_brightness,
                           initial=50, label="Bright")
        # stream plumbing is not a user-facing capability
        self.init_state("stream_source", None)
        self.add_plug("video-in", "in")
        self.register_command("plug.attach", self._cmd_plug_attach)
        self.register_command("plug.detach", self._cmd_plug_detach)

    def _cmd_plug_attach(self, payload: dict) -> dict:
        source_type = str(payload.get("source_type", ""))
        source = self._PLUG_SOURCES.get(source_type)
        if source is None:
            raise FcmCommandError(
                "EINVALID_ARG", f"cannot display a {source_type!r} stream")
        self.set_state("stream_source", str(payload.get("source_seid")))
        self.set_state("source", source)
        return {"source": source}

    def _cmd_plug_detach(self, payload: dict) -> dict:
        self.set_state("stream_source", None)
        self.set_state("source", "tuner")
        return {"source": "tuner"}

    def _cmd_source(self, payload: dict) -> dict:
        source = str(self.require_arg(payload, "source"))
        if source not in INPUT_SOURCES:
            raise FcmCommandError(
                "EINVALID_ARG", f"source {source!r} not in {INPUT_SOURCES}")
        self.set_state("source", source)
        return {"source": source}

    def _cmd_brightness(self, payload: dict) -> dict:
        level = int(self.require_arg(payload, "brightness"))
        if not 0 <= level <= 100:
            raise FcmCommandError("EINVALID_ARG",
                                  f"brightness {level} outside 0..100")
        self.set_state("brightness", level)
        return {"brightness": level}


class Television(Appliance):
    """A living-room television set."""

    device_class = "tv"
    model = "TV-2840"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(TunerFcm)
        dcm.add_fcm(DisplayFcm)

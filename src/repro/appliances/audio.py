"""Audio amplifier appliance."""

from __future__ import annotations

from repro.appliances.base import Appliance
from repro.havi.fcm import Fcm, FcmCommandError, FcmType

SOURCES = ("cd", "tuner", "aux", "tv")


class AmplifierFcm(Fcm):
    """Volume, tone and source selection."""

    fcm_type = FcmType.AMPLIFIER

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.declare_switch("power", command="power.set",
                            handler=self._cmd_power, initial=False,
                            label="Power")
        self.declare_switch("mute", command="mute.set",
                            handler=self._cmd_mute, initial=False,
                            label="Mute")
        self.declare_range("volume", 0, 100, command="volume.set",
                           arg="volume", step=5,
                           handler=self._cmd_volume, initial=30,
                           label="Vol")
        self.declare_choice("source", SOURCES, command="source.set",
                            arg="source", handler=self._cmd_source,
                            initial="cd", label="Source")
        # tone knobs and stream plumbing stay off the capability surface
        self.init_state("bass", 0)
        self.init_state("treble", 0)
        self.init_state("stream_source", None)
        self.add_plug("audio-in", "in")
        self.register_command("tone.set", self._cmd_tone)
        self.register_command("plug.attach", self._cmd_plug_attach)
        self.register_command("plug.detach", self._cmd_plug_detach)

    def _cmd_plug_attach(self, payload: dict) -> dict:
        self.set_state("stream_source", str(payload.get("source_seid")))
        self.set_state("source", "aux")
        return {"source": "aux"}

    def _cmd_plug_detach(self, payload: dict) -> dict:
        self.set_state("stream_source", None)
        return {}

    def _cmd_power(self, payload: dict) -> dict:
        on = bool(self.require_arg(payload, "on"))
        self.set_state("power", on)
        return {"power": on}

    def _cmd_volume(self, payload: dict) -> dict:
        self.require_power()
        volume = int(self.require_arg(payload, "volume"))
        if not 0 <= volume <= 100:
            raise FcmCommandError("EINVALID_ARG",
                                  f"volume {volume} outside 0..100")
        self.set_state("volume", volume)
        if volume > 0:
            self.set_state("mute", False)
        return {"volume": volume}

    def _cmd_mute(self, payload: dict) -> dict:
        self.require_power()
        mute = bool(self.require_arg(payload, "on"))
        self.set_state("mute", mute)
        return {"mute": mute}

    def _cmd_source(self, payload: dict) -> dict:
        self.require_power()
        source = str(self.require_arg(payload, "source"))
        if source not in SOURCES:
            raise FcmCommandError("EINVALID_ARG",
                                  f"source {source!r} not in {SOURCES}")
        self.set_state("source", source)
        return {"source": source}

    def _cmd_tone(self, payload: dict) -> dict:
        self.require_power()
        result = {}
        for knob in ("bass", "treble"):
            if knob in payload:
                level = int(payload[knob])
                if not -10 <= level <= 10:
                    raise FcmCommandError(
                        "EINVALID_ARG", f"{knob} {level} outside -10..10")
                self.set_state(knob, level)
                result[knob] = level
        if not result:
            raise FcmCommandError("EINVALID_ARG", "need bass and/or treble")
        return result


class Amplifier(Appliance):
    """A hi-fi amplifier."""

    device_class = "amplifier"
    model = "AMP-300"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(AmplifierFcm)

"""Microwave oven: the cooking-scenario appliance (paper §1).

The paper motivates dynamic device switching with a user who is cooking and
wants voice control because both hands are busy.  This appliance gives that
scenario something real to control: a timer that counts down on the virtual
clock and fires a completion event.
"""

from __future__ import annotations

from typing import Optional

from repro.appliances.base import Appliance
from repro.havi.events import HaviEvent
from repro.havi.fcm import Fcm, FcmCommandError, FcmType
from repro.util.scheduler import Event

MAX_SECONDS = 3600
POWER_LEVELS = tuple(range(1, 11))


class MicrowaveFcm(Fcm):
    """Door, power level and a real countdown timer.

    Remaining time is computed lazily from the start timestamp, but the
    *completion* is a single scheduled event (so ``run_until_idle`` jumps
    straight to the ding rather than ticking every second).
    """

    fcm_type = FcmType.MICROWAVE

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # panel surface, in display order: status, time entry, transport,
        # door, power level.  The pending-time accumulator lives *here*
        # (not in the panel) so every surface — GUI, DDI, voice — shares it.
        self.declare_text("status", initial="READY", label="Status")
        self.declare_button("add10", command="timer.add",
                            handler=self._cmd_add, args={"seconds": 10},
                            label="+10s")
        self.declare_button("add60", command="timer.add",
                            args={"seconds": 60}, label="+1m")
        self.declare_button("add600", command="timer.add",
                            args={"seconds": 600}, label="+10m")
        self.declare_button("clear", command="timer.clear",
                            handler=self._cmd_clear, label="Clear")
        self.declare_text("time", attribute="time_text", initial="0:00")
        self.declare_button("start", command="timer.start",
                            handler=self._cmd_start, label="Start")
        self.declare_button("stop", command="timer.stop",
                            handler=self._cmd_stop, label="Stop")
        self.declare_button("door", command="door.toggle",
                            handler=self._cmd_door_toggle, label="Door")
        self.declare_range("level", 1, 10, command="power_level.set",
                           arg="level", handler=self._cmd_power_level,
                           attribute="power_level", initial=7, label="Pwr")
        self.init_state("door_open", False)
        self.init_state("running", False)
        self.init_state("remaining_s", 0)
        self.init_state("pending_s", 0)
        self.init_state("cook_count", 0)
        self._finish_event: Optional[Event] = None
        self._started_at = 0.0
        self._duration = 0.0
        self.register_command("door.open", self._cmd_door_open)
        self.register_command("door.close", self._cmd_door_close)
        self.register_command("timer.remaining", self._cmd_remaining)

    def _now(self) -> float:
        return self.messaging.scheduler.now()

    def remaining(self) -> float:
        if not self.get_state("running"):
            return float(self.get_state("remaining_s"))
        elapsed = self._now() - self._started_at
        return max(0.0, self._duration - elapsed)

    # -- derived display state ----------------------------------------------

    def _refresh_display(self) -> None:
        if self.get_state("door_open"):
            status = "DOOR OPEN"
        elif self.get_state("running"):
            status = "COOKING"
        else:
            status = "READY"
        self.set_state("status", status)
        if self.get_state("running"):
            seconds = int(round(self.remaining()))
        else:
            seconds = int(self.get_state("pending_s"))
        self.set_state("time_text", f"{seconds // 60}:{seconds % 60:02d}")

    # -- commands -----------------------------------------------------------

    def _cmd_door_open(self, payload: dict) -> dict:
        if self.get_state("running"):
            self._halt(int(round(self.remaining())))
        self.set_state("door_open", True)
        self._refresh_display()
        return {"door_open": True}

    def _cmd_door_close(self, payload: dict) -> dict:
        self.set_state("door_open", False)
        self._refresh_display()
        return {"door_open": False}

    def _cmd_door_toggle(self, payload: dict) -> dict:
        if self.get_state("door_open"):
            return self._cmd_door_close(payload)
        return self._cmd_door_open(payload)

    def _cmd_add(self, payload: dict) -> dict:
        if self.get_state("running"):
            raise FcmCommandError("EINVALID_STATE", "already cooking")
        seconds = int(self.require_arg(payload, "seconds"))
        if seconds <= 0:
            raise FcmCommandError("EINVALID_ARG",
                                  f"cannot add {seconds}s")
        pending = min(MAX_SECONDS,
                      int(self.get_state("pending_s")) + seconds)
        self.set_state("pending_s", pending)
        self._refresh_display()
        return {"pending_s": pending}

    def _cmd_clear(self, payload: dict) -> dict:
        self.set_state("pending_s", 0)
        self._refresh_display()
        return {"pending_s": 0}

    def _cmd_power_level(self, payload: dict) -> dict:
        level = int(self.require_arg(payload, "level"))
        if level not in POWER_LEVELS:
            raise FcmCommandError("EINVALID_ARG",
                                  f"power level {level} outside 1..10")
        self.set_state("power_level", level)
        return {"power_level": level}

    def _cmd_start(self, payload: dict) -> dict:
        if self.get_state("door_open"):
            raise FcmCommandError("EDOOR_OPEN", "close the door first")
        if self.get_state("running"):
            raise FcmCommandError("EINVALID_STATE", "already cooking")
        if "seconds" in payload:
            seconds = int(payload["seconds"])
        else:
            seconds = int(self.get_state("pending_s"))
        if not 1 <= seconds <= MAX_SECONDS:
            raise FcmCommandError("EINVALID_ARG",
                                  f"{seconds}s outside 1..{MAX_SECONDS}")
        self._duration = float(seconds)
        self._started_at = self._now()
        self.set_state("pending_s", 0)
        self.set_state("remaining_s", seconds)
        self.set_state("running", True)
        self._finish_event = self.messaging.scheduler.call_later(
            seconds, self._finish)
        self._refresh_display()
        return {"running": True, "remaining_s": seconds}

    def _cmd_stop(self, payload: dict) -> dict:
        if not self.get_state("running"):
            raise FcmCommandError("EINVALID_STATE", "not cooking")
        left = int(round(self.remaining()))
        self._halt(left)
        return {"running": False, "remaining_s": left}

    def _cmd_remaining(self, payload: dict) -> dict:
        left = int(round(self.remaining()))
        self.set_state("remaining_s", left)
        return {"remaining_s": left, "running": self.get_state("running")}

    # -- timer internals -------------------------------------------------------

    def _halt(self, remaining_s: int) -> None:
        if self._finish_event is not None:
            self._finish_event.cancel()
            self._finish_event = None
        self.set_state("running", False)
        self.set_state("remaining_s", remaining_s)
        self._refresh_display()

    def _finish(self) -> None:
        self._finish_event = None
        self.set_state("running", False)
        self.set_state("remaining_s", 0)
        self._refresh_display()
        self.set_state("cook_count", int(self.get_state("cook_count")) + 1)
        # the "ding": a distinguished event UIs map to a bell
        self.events.post(HaviEvent(
            source=self.seid,
            opcode="appliance.bell",
            payload={"device_guid": self.device_guid,
                     "device_name": self.device_name},
        ))


class MicrowaveOven(Appliance):
    """A kitchen microwave oven."""

    device_class = "microwave"
    model = "MW-700"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(MicrowaveFcm)

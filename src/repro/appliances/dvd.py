"""DVD player appliance (HAVi AV-disc FCM)."""

from __future__ import annotations

from repro.appliances.base import Appliance
from repro.havi.fcm import Fcm, FcmCommandError, FcmType

#: Chapters on the simulated demo disc.
DISC_CHAPTERS = 12


class AvDiscFcm(Fcm):
    """Tray, transport and chapter navigation."""

    fcm_type = FcmType.AV_DISC

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.declare_switch("power", command="power.set",
                            handler=self._cmd_power, initial=False,
                            label="Power")
        self.declare_text("playback", initial="stop", label="Playback")
        self.declare_text("chapter", initial=1, fmt="Ch {value}",
                          label="Chapter")
        self.declare_button("chapter-prev", command="chapter.prev",
                            handler=self._cmd_prev, label="|<")
        self.declare_button("playback-play", command="playback.play",
                            handler=self._cmd_play, label=">")
        self.declare_button("playback-pause", command="playback.pause",
                            handler=self._cmd_pause, label="||")
        self.declare_button("playback-stop", command="playback.stop",
                            handler=self._cmd_stop, label="[]")
        self.declare_button("chapter-next", command="chapter.next",
                            handler=self._cmd_next, label=">|")
        self.declare_button("tray", command="tray.toggle",
                            handler=self._cmd_tray_toggle,
                            label="Open/Close")
        self.init_state("tray_open", False)
        self.init_state("disc_loaded", True)
        self.add_plug("av-out", "out")
        self.register_command("tray.open", self._cmd_tray_open)
        self.register_command("tray.close", self._cmd_tray_close)
        self.register_command("chapter.set", self._cmd_chapter)

    def _require_disc(self) -> None:
        if self.get_state("tray_open"):
            raise FcmCommandError("EINVALID_STATE", "tray is open")
        if not self.get_state("disc_loaded"):
            raise FcmCommandError("ENO_MEDIA", "no disc loaded")

    def _cmd_power(self, payload: dict) -> dict:
        on = bool(self.require_arg(payload, "on"))
        if not on:
            self.set_state("playback", "stop")
        self.set_state("power", on)
        return {"power": on}

    def _cmd_tray_open(self, payload: dict) -> dict:
        self.require_power()
        self.set_state("playback", "stop")
        self.set_state("tray_open", True)
        return {"tray_open": True}

    def _cmd_tray_close(self, payload: dict) -> dict:
        self.require_power()
        self.set_state("tray_open", False)
        return {"tray_open": False}

    def _cmd_tray_toggle(self, payload: dict) -> dict:
        if self.get_state("tray_open"):
            return self._cmd_tray_close(payload)
        return self._cmd_tray_open(payload)

    def _cmd_play(self, payload: dict) -> dict:
        self.require_power()
        self._require_disc()
        self.set_state("playback", "play")
        return {"playback": "play"}

    def _cmd_stop(self, payload: dict) -> dict:
        self.require_power()
        self.set_state("playback", "stop")
        self.set_state("chapter", 1)
        return {"playback": "stop"}

    def _cmd_pause(self, payload: dict) -> dict:
        self.require_power()
        if self.get_state("playback") != "play":
            raise FcmCommandError("EINVALID_STATE",
                                  "pause only valid while playing")
        self.set_state("playback", "pause")
        return {"playback": "pause"}

    def _set_chapter(self, chapter: int) -> dict:
        if not 1 <= chapter <= DISC_CHAPTERS:
            raise FcmCommandError(
                "EINVALID_ARG", f"chapter {chapter} outside 1..{DISC_CHAPTERS}")
        self.set_state("chapter", chapter)
        return {"chapter": chapter}

    def _cmd_next(self, payload: dict) -> dict:
        self.require_power()
        self._require_disc()
        current = int(self.get_state("chapter"))
        return self._set_chapter(min(DISC_CHAPTERS, current + 1))

    def _cmd_prev(self, payload: dict) -> dict:
        self.require_power()
        self._require_disc()
        current = int(self.get_state("chapter"))
        return self._set_chapter(max(1, current - 1))

    def _cmd_chapter(self, payload: dict) -> dict:
        self.require_power()
        self._require_disc()
        return self._set_chapter(int(self.require_arg(payload, "chapter")))


class DvdPlayer(Appliance):
    """A DVD player."""

    device_class = "dvd"
    model = "DVD-X1"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(AvDiscFcm)

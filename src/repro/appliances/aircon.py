"""Air conditioner appliance with a lazy thermal model."""

from __future__ import annotations

import math

from repro.appliances.base import Appliance
from repro.havi.fcm import Fcm, FcmCommandError, FcmType

MODES = ("cool", "heat", "dry", "fan")
FAN_SPEEDS = ("auto", "low", "medium", "high")
MIN_TEMP = 16
MAX_TEMP = 30

#: Thermal time constant (seconds to close ~63% of the gap to target).
TIME_CONSTANT = 600.0
#: Ambient the room relaxes to when the unit is off.
AMBIENT = 28.0


class AirconFcm(Fcm):
    """Power, mode, target temperature, fan speed, simulated room temp.

    Room temperature is computed lazily (first-order exponential approach
    to the setpoint while on, to ambient while off) so the scheduler never
    carries periodic tick events.
    """

    fcm_type = FcmType.AIRCON

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.declare_switch("power", command="power.set",
                            handler=self._cmd_power, initial=False,
                            label="Power")
        self.declare_text("room", attribute="room_temp", initial=AMBIENT,
                          fmt="Room {value:.1f}C", label="Room")
        self.declare_range("target", MIN_TEMP, MAX_TEMP,
                           command="temp.set", arg="temp",
                           handler=self._cmd_temp,
                           attribute="target_temp", initial=25,
                           unit="C", label="Set")
        self.declare_choice("mode", MODES, command="mode.set", arg="mode",
                            handler=self._cmd_mode, initial="cool",
                            label="Mode")
        # fan speed stays a plain command (not on the panel surface)
        self.init_state("fan", "auto")
        self._temp_base = AMBIENT
        self._temp_mark = self._now()
        self.register_command("fan.set", self._cmd_fan)
        self.register_command("temp.read", self._cmd_read_temp)

    def _now(self) -> float:
        return self.messaging.scheduler.now()

    def _goal(self) -> float:
        if not self.get_state("power"):
            return AMBIENT
        mode = str(self.get_state("mode"))
        if mode in ("cool", "heat"):
            return float(self.get_state("target_temp"))
        if mode == "dry":
            return float(self.get_state("target_temp")) + 1.0
        return AMBIENT  # fan mode just circulates

    def room_temp(self) -> float:
        """Current simulated room temperature."""
        elapsed = self._now() - self._temp_mark
        goal = self._goal()
        decay = math.exp(-elapsed / TIME_CONSTANT)
        return goal + (self._temp_base - goal) * decay

    def _rebase_temp(self) -> None:
        """Freeze the thermal state before the goal changes."""
        self._temp_base = self.room_temp()
        self._temp_mark = self._now()
        self.set_state("room_temp", round(self._temp_base, 1))

    # -- commands ---------------------------------------------------------------

    def _cmd_power(self, payload: dict) -> dict:
        on = bool(self.require_arg(payload, "on"))
        self._rebase_temp()
        self.set_state("power", on)
        return {"power": on}

    def _cmd_mode(self, payload: dict) -> dict:
        self.require_power()
        mode = str(self.require_arg(payload, "mode"))
        if mode not in MODES:
            raise FcmCommandError("EINVALID_ARG",
                                  f"mode {mode!r} not in {MODES}")
        self._rebase_temp()
        self.set_state("mode", mode)
        return {"mode": mode}

    def _cmd_temp(self, payload: dict) -> dict:
        self.require_power()
        target = int(self.require_arg(payload, "temp"))
        if not MIN_TEMP <= target <= MAX_TEMP:
            raise FcmCommandError(
                "EINVALID_ARG",
                f"target {target} outside {MIN_TEMP}..{MAX_TEMP}")
        self._rebase_temp()
        self.set_state("target_temp", target)
        return {"target_temp": target}

    def _cmd_fan(self, payload: dict) -> dict:
        self.require_power()
        fan = str(self.require_arg(payload, "fan"))
        if fan not in FAN_SPEEDS:
            raise FcmCommandError("EINVALID_ARG",
                                  f"fan {fan!r} not in {FAN_SPEEDS}")
        self.set_state("fan", fan)
        return {"fan": fan}

    def _cmd_read_temp(self, payload: dict) -> dict:
        temp = round(self.room_temp(), 1)
        self.set_state("room_temp", temp)
        return {"room_temp": temp}


class AirConditioner(Appliance):
    """A split-unit room air conditioner."""

    device_class = "aircon"
    model = "AC-5"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(AirconFcm)

"""Dimmable light appliance."""

from __future__ import annotations

from repro.appliances.base import Appliance
from repro.havi.fcm import Fcm, FcmCommandError, FcmType


class LightFcm(Fcm):
    """On/off plus brightness."""

    fcm_type = FcmType.LIGHT

    def __init__(self, dimmable: bool = True, **kwargs) -> None:
        super().__init__(**kwargs)
        self.dimmable = dimmable
        self.declare_switch("power", command="power.set",
                            handler=self._cmd_power, initial=False,
                            label="Power")
        self.declare_range("brightness", 0, 100,
                           command="brightness.set", arg="brightness",
                           step=10, handler=self._cmd_brightness,
                           initial=100, label="Dim")
        self.register_command("power.toggle", self._cmd_toggle)

    def _cmd_power(self, payload: dict) -> dict:
        on = bool(self.require_arg(payload, "on"))
        self.set_state("power", on)
        return {"power": on}

    def _cmd_toggle(self, payload: dict) -> dict:
        on = not self.get_state("power")
        self.set_state("power", on)
        return {"power": on}

    def _cmd_brightness(self, payload: dict) -> dict:
        if not self.dimmable:
            raise FcmCommandError("EUNSUPPORTED", "light is not dimmable")
        self.require_power()
        level = int(self.require_arg(payload, "brightness"))
        if not 0 <= level <= 100:
            raise FcmCommandError("EINVALID_ARG",
                                  f"brightness {level} outside 0..100")
        self.set_state("brightness", level)
        return {"brightness": level}


class DimmableLight(Appliance):
    """A ceiling light on the home network."""

    device_class = "light"
    model = "LUX-60"

    def build_fcms(self, dcm, network) -> None:
        dcm.add_fcm(LightFcm)

"""Length-prefixed framing over byte transports.

Transports deliver whatever chunks the sender wrote; the universal
interaction protocol needs discrete messages.  :func:`frame_chunks`
prefixes a payload (one bytes-like or an already-scattered chunk list)
with a 32-bit big-endian length *without concatenating it* — the header
rides as one more chunk for the transport's vectored send path.
:func:`encode_frame` is the historical flattening wrapper.
:class:`FrameAssembler` turns an arbitrary sequence of received chunks
back into whole frames, tolerating frames split across chunks and
multiple frames per chunk.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.util.errors import TransportError

_HEADER = struct.Struct(">I")

#: Upper bound on a single frame; generous enough for a raw 1080p update.
MAX_FRAME_SIZE = 64 * 1024 * 1024

#: Compact the assembler's buffer once this many consumed bytes accrue
#: (and they outnumber the live remainder) — keeps feed() linear overall.
_COMPACT_THRESHOLD = 16 * 1024


def frame_chunks(
    payload: Union[bytes, bytearray, memoryview, Sequence[bytes]],
) -> list[bytes]:
    """``[header, *payload chunks]`` — a frame as a scatter-gather list.

    The payload is never copied or joined; callers hand the list straight
    to :meth:`~repro.net.transport.Transport.send`.
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        parts = [payload]
    else:
        parts = list(payload)
    total = sum(len(part) for part in parts)
    if total > MAX_FRAME_SIZE:
        raise TransportError(f"frame too large: {total} bytes")
    return [_HEADER.pack(total), *parts]


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its 32-bit length (flattened to one blob)."""
    return b"".join(frame_chunks(payload))


class FrameAssembler:
    """Incremental frame parser.

    Feed raw chunks with :meth:`feed`; complete frames come back either from
    the returned iterator or via the ``on_frame`` callback.

    The buffer keeps a persistent read offset and compacts only once the
    consumed prefix passes a threshold, so parsing N frames from a stream
    costs O(total bytes), not O(n²) del-compaction per frame.

    >>> frames = []
    >>> asm = FrameAssembler(on_frame=frames.append)
    >>> data = encode_frame(b"ab") + encode_frame(b"cd")
    >>> asm.feed(data[:3]); asm.feed(data[3:])
    >>> frames
    [b'ab', b'cd']
    """

    def __init__(
        self, on_frame: Optional[Callable[[bytes], None]] = None
    ) -> None:
        self._buffer = bytearray()
        self._pos = 0
        self.on_frame = on_frame

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb a chunk; returns (and dispatches) any completed frames."""
        self._buffer.extend(chunk)
        frames = list(self._drain())
        if self.on_frame is not None:
            for frame in frames:
                self.on_frame(frame)
        return frames

    def _drain(self) -> Iterator[bytes]:
        buffer = self._buffer
        try:
            while True:
                available = len(buffer) - self._pos
                if available < _HEADER.size:
                    return
                (length,) = _HEADER.unpack_from(buffer, self._pos)
                if length > MAX_FRAME_SIZE:
                    # Raise without consuming: the buffer (and offset) stay
                    # exactly as they were, so state remains inspectable
                    # and the error reproduces instead of corrupting.
                    raise TransportError(f"incoming frame too large: {length}")
                end = self._pos + _HEADER.size + length
                if len(buffer) < end:
                    return
                # one copy, not two: slicing the bytearray directly would
                # copy into a bytearray and again into bytes.  The view is
                # a temporary, dead before the finally-block compaction
                # resizes the buffer.
                frame = bytes(memoryview(buffer)[
                    self._pos + _HEADER.size:end])
                self._pos = end
                yield frame
        finally:
            if (self._pos > _COMPACT_THRESHOLD
                    and self._pos > len(buffer) - self._pos):
                del buffer[:self._pos]
                self._pos = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes of incomplete frame currently held."""
        return len(self._buffer) - self._pos

"""Length-prefixed framing over byte pipes.

Pipes deliver whatever chunks the sender wrote; the universal interaction
protocol needs discrete messages.  :func:`encode_frame` prefixes a payload
with a 32-bit big-endian length; :class:`FrameAssembler` turns an arbitrary
sequence of received chunks back into whole frames, tolerating frames split
across chunks and multiple frames per chunk.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator, Optional

from repro.util.errors import TransportError

_HEADER = struct.Struct(">I")

#: Upper bound on a single frame; generous enough for a raw 1080p update.
MAX_FRAME_SIZE = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its 32-bit length."""
    if len(payload) > MAX_FRAME_SIZE:
        raise TransportError(f"frame too large: {len(payload)} bytes")
    return _HEADER.pack(len(payload)) + payload


class FrameAssembler:
    """Incremental frame parser.

    Feed raw chunks with :meth:`feed`; complete frames come back either from
    the returned iterator or via the ``on_frame`` callback.

    >>> frames = []
    >>> asm = FrameAssembler(on_frame=frames.append)
    >>> data = encode_frame(b"ab") + encode_frame(b"cd")
    >>> asm.feed(data[:3]); asm.feed(data[3:])
    >>> frames
    [b'ab', b'cd']
    """

    def __init__(
        self, on_frame: Optional[Callable[[bytes], None]] = None
    ) -> None:
        self._buffer = bytearray()
        self.on_frame = on_frame

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb a chunk; returns (and dispatches) any completed frames."""
        self._buffer.extend(chunk)
        frames = list(self._drain())
        if self.on_frame is not None:
            for frame in frames:
                self.on_frame(frame)
        return frames

    def _drain(self) -> Iterator[bytes]:
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_SIZE:
                raise TransportError(f"incoming frame too large: {length}")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            frame = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield frame

    @property
    def buffered_bytes(self) -> int:
        """Bytes of incomplete frame currently held."""
        return len(self._buffer)

"""The Transport abstraction: byte channels with credit-based flow control.

Everything above this layer (UIP sessions, the proxy, device links) talks
to a :class:`Transport`: an ordered, reliable-unless-lossy byte channel
with

* **scatter-gather sends** — :meth:`Transport.send` accepts a single
  bytes-like *or* a list of chunks (sendmsg-style vectored writes), so a
  frame assembled as parts is never concatenated just to cross the wire;
* **credit-based flow control** — each transport derives a high/low
  watermark pair from its :class:`~repro.net.link.LinkProfile`'s
  bandwidth-delay product.  Bytes accepted but not yet drained count
  against the credit; :attr:`Transport.writable` goes false at the high
  watermark and the :attr:`Transport.on_writable` callback fires once the
  backlog drains below the low watermark.  Senders that honour the signal
  (the UniInt server sessions, the proxy's device push path) coalesce
  their pending work instead of queueing stale payloads.

Two implementations exist:

* :class:`~repro.net.pipe.Endpoint` — the virtual-time simulated pipe
  (:func:`~repro.net.pipe.make_pipe`), where "queued" means scheduled but
  not yet delivered on the virtual clock;
* :class:`SocketTransport` — an in-process ``socket.socketpair`` carrying
  real bytes through the kernel, proving the stack runs over genuine byte
  streams.  Writes use ``sendmsg`` with the chunk list as the iovec;
  "queued" means written-but-not-yet-read-by-the-peer (plus any userspace
  outbox backlog when the kernel buffer is full).
"""

from __future__ import annotations

import socket
import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.net.link import LOOPBACK, LinkProfile
from repro.util.errors import TransportClosed, TransportError
from repro.util.scheduler import Scheduler

#: What :meth:`Transport.send` accepts: one bytes-like or a chunk list.
Payload = Union[bytes, bytearray, memoryview, Sequence[bytes]]

#: Credit floor: even a 9600 bps cellular link may hold one small update.
MIN_CREDIT = 4096


@dataclass
class TransportStats:
    """Per-transport traffic counters.

    ``messages_received`` counts *framed messages* (one per peer
    ``send()``), not receive syscalls, so it stays in parity with the
    sending half's ``messages_sent`` even when a kernel byte stream
    re-segments the traffic arbitrarily.
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped: int = 0
    #: High-water mark of :attr:`Transport.queued_bytes` over the
    #: transport's lifetime — the backpressure experiments' key number.
    peak_queued_bytes: int = 0

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.messages_dropped = 0
        self.peak_queued_bytes = 0


def as_chunks(data: Payload) -> tuple[list[bytes], int]:
    """Normalise a payload into immutable chunks plus the total length.

    Mutable buffers (``bytearray``/``memoryview``) are copied once here:
    delivery is deferred, so the sender must be free to reuse them.
    ``bytes`` chunks pass through untouched — the zero-copy broadcast path
    hands the same cached chunk list to every session's transport.
    """
    if isinstance(data, bytes):
        return [data], len(data)
    if isinstance(data, (bytearray, memoryview)):
        chunk = bytes(data)
        return [chunk], len(chunk)
    if isinstance(data, (list, tuple)):
        chunks: list[bytes] = []
        total = 0
        for part in data:
            if not isinstance(part, (bytes, bytearray, memoryview)):
                raise TypeError(
                    f"payload chunk must be bytes-like, got {type(part)!r}")
            part = part if isinstance(part, bytes) else bytes(part)
            chunks.append(part)
            total += len(part)
        return chunks, total
    raise TypeError(f"payload must be bytes-like or a chunk list, "
                    f"got {type(data)!r}")


#: A link's RTT is taken as at least this when sizing credit: a fast LAN
#: with a microsecond RTT must still absorb one frame burst (~a
#: scheduling quantum of line rate) without stalling the sender.
MIN_CREDIT_RTT_S = 0.010


def credit_watermarks(profile: LinkProfile) -> tuple[int, int]:
    """(high, low) credit watermarks for a link.

    The high watermark is twice the link's bandwidth-delay product —
    round trip (floored at :data:`MIN_CREDIT_RTT_S`) plus jitter — and
    never below :data:`MIN_CREDIT`: enough in-flight data to keep the
    link busy and let a fast link swallow a whole frame burst, little
    enough that a slow link's queued update is never more than ~one RTT
    stale.  The low watermark is half the high, giving the writable
    signal hysteresis.
    """
    rtt = max(2.0 * profile.latency_s + profile.jitter_s, MIN_CREDIT_RTT_S)
    bdp = profile.bandwidth_bps / 8.0 * rtt
    high = max(MIN_CREDIT, int(2.0 * bdp))
    return high, max(1, high // 2)


class Transport:
    """Base class: credit accounting plus receive-side buffering.

    Subclasses implement :meth:`_write` (queue normalised chunks for
    delivery), :meth:`close`, and keep :attr:`is_open` truthful; they call
    :meth:`_credit_charge` when bytes enter their queue and
    :meth:`_credit_release` when the peer has them.
    """

    def __init__(self, profile: LinkProfile, name: str) -> None:
        self._profile = profile
        self.name = name
        self.stats = TransportStats()
        self._open = True
        self._queued = 0
        self._high_water, self._low_water = credit_watermarks(profile)
        self._saturated = False
        self._rx_pending: list[bytes] = []
        self._on_receive: Optional[Callable[[bytes], None]] = None
        #: Invoked once when the peer closes (after in-flight data).
        self.on_close: Optional[Callable[[], None]] = None
        #: Invoked when the send queue drains below the low watermark
        #: after having saturated the high one.
        self.on_writable: Optional[Callable[[], None]] = None

    # -- interface ----------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def profile(self) -> LinkProfile:
        return self._profile

    def send(self, data: Payload) -> None:
        """Queue ``data`` (one bytes-like or a chunk list) for the peer."""
        if not self._open:
            raise TransportClosed(f"transport {self.name} is closed")
        chunks, total = as_chunks(data)
        self.stats.bytes_sent += total
        self.stats.messages_sent += 1
        self._write(chunks, total)

    def close(self) -> None:
        raise NotImplementedError

    def abort(self) -> None:
        """Hard-kill the channel, RST-style: in-flight data is lost.

        Unlike :meth:`close` (graceful: queued bytes still reach the peer)
        an abort models a connection reset — whatever was queued dies with
        the channel and all charged credit returns immediately, so an
        upstream backpressure-honouring sender is never wedged on bytes
        that can no longer drain.  The fault injector's ``rst`` rides this.
        Subclasses with a real reset path override it; the base class falls
        back to :meth:`close`.
        """
        self.close()

    def _write(self, chunks: list[bytes], total: int) -> None:
        raise NotImplementedError

    # -- credit-based flow control -------------------------------------------

    @property
    def queued_bytes(self) -> int:
        """Bytes accepted by :meth:`send` but not yet with the peer."""
        return self._queued

    @property
    def credit_limit(self) -> int:
        """The high watermark: :attr:`writable` is false at/above it."""
        return self._high_water

    def backlog_seconds(self) -> float:
        """Seconds of line time the queued backlog represents.

        The adaptive encoder selection's "how far behind is this link"
        cost input: queued bytes divided through the bearer's bandwidth.
        Zero on an idle (or infinitely fast) link.
        """
        return self._profile.transmission_time(self._queued)

    @property
    def writable(self) -> bool:
        """True while the transport will accept more data without queueing
        past its credit.  Sends are never *refused* — a send while
        unwritable simply deepens the queue — so flow control is
        cooperative: well-behaved senders check and coalesce instead."""
        return self._queued < self._high_water

    def _credit_charge(self, nbytes: int) -> None:
        self._queued += nbytes
        if self._queued > self.stats.peak_queued_bytes:
            self.stats.peak_queued_bytes = self._queued
        if self._queued >= self._high_water:
            self._saturated = True

    def _credit_release(self, nbytes: int) -> None:
        self._queued -= nbytes
        if self._queued < 0:  # pragma: no cover - accounting bug guard
            self._queued = 0
        if (self._saturated and self._queued <= self._low_water):
            self._saturated = False
            if self.on_writable is not None and self._open:
                self.on_writable()

    # -- receive-side buffering -----------------------------------------------

    @property
    def on_receive(self) -> Optional[Callable[[bytes], None]]:
        return self._on_receive

    @on_receive.setter
    def on_receive(self, callback: Optional[Callable[[bytes], None]]) -> None:
        self._on_receive = callback
        if callback is not None and self._rx_pending:
            pending, self._rx_pending = self._rx_pending, []
            for chunk in pending:
                callback(chunk)

    def _dispatch(self, chunk: bytes) -> None:
        """Hand one received chunk to the callback (or buffer it)."""
        if self._on_receive is not None:
            self._on_receive(chunk)
        else:
            self._rx_pending.append(chunk)


class SocketTransport(Transport):
    """One end of a real kernel byte stream (socketpair or TCP).

    All I/O is non-blocking, so the virtual-time stack drives real
    sockets without threads: a send writes what the kernel buffer takes
    (via ``sendmsg`` with the chunk list as the iovec) and parks the rest
    in a userspace outbox.  Two pumping modes exist:

    * **scheduler-pumped** (the in-process socketpair of
      :func:`make_socket_transport_pair`): pumps run as scheduler events;
      the peer's receive pump drains the kernel buffer, releases the
      sender's credit, and reschedules the sender's outbox flush.
    * **reactor-registered** (:meth:`attach_reactor` — every TCP leg):
      pumps run on I/O readiness.  Write interest is armed exactly while
      the outbox is non-empty (or a connect is still in flight) and
      disarmed once drained, so a full kernel buffer is an EPOLLOUT wait,
      never a stall.

    Unlike the simulated pipe there is no link timing model — bytes move
    at whatever pace the pumps run — but the credit watermarks still come
    from the declared :class:`LinkProfile`, so backpressure behaviour
    matches a real deployment of that bearer.  With an in-process peer,
    credit covers written-but-not-yet-read-by-the-peer bytes; without one
    (a real TCP link) the kernel socket buffer *is* the wire, so credit
    covers the userspace outbox and is released as the kernel accepts
    bytes.
    """

    #: Cap on iovec entries per sendmsg call (IOV_MAX is much larger, but
    #: short batches keep partial-write bookkeeping cheap).
    _MAX_IOV = 64

    #: Bytes one receive pump turn may process before yielding.  Under a
    #: many-home fleet an unbounded drain would hand one busy link the
    #: whole turn; capping it lets every other member's events interleave.
    RECV_BUDGET = 4 * 65536

    def __init__(self, scheduler: Scheduler, sock: socket.socket,
                 profile: LinkProfile = LOOPBACK,
                 name: str = "socket",
                 connecting: bool = False) -> None:
        super().__init__(profile, name)
        sock.setblocking(False)
        self._scheduler = scheduler
        self._sock = sock
        self._peer: Optional["SocketTransport"] = None
        self._outbox: deque[memoryview] = deque()
        self._recv_scheduled = False
        self._send_scheduled = False
        self._wr_shutdown = False
        #: Non-blocking connect still in flight (TCP client legs): sends
        #: wait in the outbox until EPOLLOUT confirms the connect.
        self._connecting = connecting
        self._reactor_handle = None
        # Inbound message boundaries (in-process peers record each send's
        # length here) so messages_received counts framed messages, not
        # recv() syscalls — see TransportStats.
        self._rx_boundaries: deque[int] = deque()
        self._rx_into_head = 0

    def _attach(self, peer: "SocketTransport") -> None:
        self._peer = peer

    # -- reactor integration -------------------------------------------------

    def attach_reactor(self, reactor, member=None) -> None:
        """Drive the pumps from I/O readiness instead of scheduler events.

        Registers the socket with ``reactor`` (attributing callback errors
        to ``member`` for per-home containment).  Read interest is
        permanent while open; write interest tracks the outbox.
        """
        if self._reactor_handle is not None:
            raise TransportError(
                f"transport {self.name} is already reactor-registered")
        self._reactor_handle = reactor.register(
            self._sock, on_readable=self._pump_recv,
            on_writable=self._on_io_writable, member=member)
        if self._connecting or self._outbox:
            self._reactor_handle.set_write_interest(True)

    def _release_reactor(self) -> None:
        if self._reactor_handle is not None:
            self._reactor_handle.unregister()
            self._reactor_handle = None

    def _on_io_writable(self) -> None:
        if self._connecting:
            error = self._sock.getsockopt(socket.SOL_SOCKET,
                                          socket.SO_ERROR)
            if error:
                self._on_reset()
                return
            self._connecting = False
        self._pump_send()

    # -- sending ------------------------------------------------------------

    def _write(self, chunks: list[bytes], total: int) -> None:
        self._credit_charge(total)
        if self._peer is not None:
            if total:
                self._peer._rx_boundaries.append(total)
            else:
                # a zero-byte message never produces readable bytes; it is
                # "delivered" the instant it is sent (pipe parity)
                self._peer.stats.messages_received += 1
        self._outbox.extend(memoryview(c) for c in chunks if len(c))
        self._pump_send()

    def _schedule_send(self) -> None:
        if self._reactor_handle is not None:
            self._reactor_handle.set_write_interest(True)
            return
        # after close() the pump keeps running until the outbox drains
        # (close() promises queued bytes still reach the peer)
        if not self._send_scheduled and (self._outbox
                                         or not self._wr_shutdown):
            self._send_scheduled = True
            self._scheduler.call_soon(self._pump_send_event)

    def _pump_send_event(self) -> None:
        self._send_scheduled = False
        self._pump_send()

    def _pump_send(self) -> None:
        if self._connecting:
            # nowhere to write yet: bytes wait in the outbox and EPOLLOUT
            # (connect completion) re-enters here
            self._arm_send_continuation()
            return
        accepted = 0
        while self._outbox:
            iov = []
            for chunk in self._outbox:
                iov.append(chunk)
                if len(iov) >= self._MAX_IOV:
                    break
            try:
                sent = self._sock.sendmsg(iov)
            except InterruptedError:
                # EINTR: retry from our own event — the peer-drain
                # continuation below only works once bytes have actually
                # entered the kernel, which EINTR does not guarantee
                self._schedule_send()
                break
            except BlockingIOError:
                break
            except OSError:
                self._on_reset()
                return
            accepted += sent
            while sent and self._outbox:
                head = self._outbox[0]
                if sent >= len(head):
                    sent -= len(head)
                    self._outbox.popleft()
                else:
                    self._outbox[0] = head[sent:]
                    sent = 0
        if accepted and self._peer is None:
            # no in-process peer will ever acknowledge these bytes: once
            # the kernel accepts them they have left our queue (the TCP
            # socket buffer is the wire)
            self._credit_release(accepted)
        if self._outbox:
            # kernel buffer full with frames still queued: arm a
            # continuation *now* — readiness (reactor) or the peer's
            # drain (scheduler) — so nothing depends on an unrelated
            # write coming along to restart the flush
            self._arm_send_continuation()
        elif self._reactor_handle is not None:
            self._reactor_handle.set_write_interest(False)
        if self._peer is not None:
            self._peer._schedule_recv()
        if not self._outbox and self._wr_shutdown:
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:  # pragma: no cover - already reset
                pass

    def _arm_send_continuation(self) -> None:
        """Guarantee the outbox flush resumes once it can.

        Reactor mode arms EPOLLOUT; scheduler mode schedules the peer's
        receive pump, whose drain frees kernel buffer space and
        reschedules this sender (see :meth:`_pump_recv`).
        """
        if self._reactor_handle is not None:
            self._reactor_handle.set_write_interest(True)
        elif self._peer is not None:
            self._peer._schedule_recv()

    # -- receiving ------------------------------------------------------------

    def _schedule_recv(self) -> None:
        if self._reactor_handle is not None:
            return  # level-triggered read interest covers it
        if not self._recv_scheduled and self._open:
            self._recv_scheduled = True
            self._scheduler.call_soon(self._pump_recv)

    def _pump_recv(self) -> None:
        self._recv_scheduled = False
        if not self._open:
            if self._reactor_handle is not None:
                self._reap_eof()
            return
        budget = self.RECV_BUDGET
        while budget > 0:
            try:
                data = self._sock.recv(min(65536, budget))
            except InterruptedError:
                # EINTR: bytes may already be waiting, so unlike EAGAIN
                # this must retry without depending on a new readiness
                # edge or peer send
                self._schedule_recv()
                break
            except BlockingIOError:
                break
            except OSError:
                data = b""
            if not data:
                self._on_eof()
                return
            budget -= len(data)
            self.stats.bytes_received += len(data)
            self._note_received(len(data))
            if self._peer is not None:
                self._peer._credit_release(len(data))
                if self._peer._outbox:
                    # arm the peer's stalled flush *before* dispatching:
                    # the drain freed kernel buffer space, and that must
                    # translate into a scheduled send even if the receive
                    # callback below raises
                    self._peer._schedule_send()
            self._dispatch(data)
        else:
            # budget spent with bytes possibly remaining: yield so other
            # links' events interleave this turn, then resume.  (In
            # reactor mode the level-triggered poll resumes on its own.)
            self._schedule_recv()

    def _note_received(self, nbytes: int) -> None:
        """Advance the framed-message counter by ``nbytes`` of stream.

        With recorded boundaries (an in-process peer) a message counts
        exactly when its last byte arrives.  Without them (a real TCP
        link) boundaries are unknowable at this layer: each delivered
        chunk counts as one message and exact parity is the framing
        layer's business.
        """
        if not self._rx_boundaries:
            self.stats.messages_received += 1
            return
        n = nbytes
        while n > 0 and self._rx_boundaries:
            head = self._rx_boundaries[0]
            take = min(n, head - self._rx_into_head)
            self._rx_into_head += take
            n -= take
            if self._rx_into_head >= head:
                self._rx_boundaries.popleft()
                self._rx_into_head = 0
                self.stats.messages_received += 1

    def _reap_eof(self) -> None:
        """Closed-side drain (reactor mode): discard the remote's last
        bytes and release the fd once its EOF arrives."""
        while True:
            try:
                data = self._sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                data = b""
            if not data:
                self._release_reactor()
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover
                    pass
                return

    def _on_eof(self) -> None:
        if not self._open:
            return
        self._open = False
        # whatever we still owed the peer (outbox or kernel in-flight)
        # dies with this close: return the charged credit so an upstream
        # backpressure-honouring sender is not wedged forever
        self._outbox.clear()
        self._rx_boundaries.clear()
        self._credit_release(self._queued)
        self._release_reactor()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        if self.on_close is not None:
            self.on_close()

    def _on_reset(self) -> None:
        """The peer's socket is gone (hard close, EPIPE/ECONNRESET).

        In-flight data is lost and nothing will ever drain it: return
        *all* charged credit (not just the userspace outbox — bytes in
        the kernel buffer are equally undeliverable) and close this side,
        otherwise a backpressure-honouring sender would wait forever on
        credit that cannot come back.
        """
        self._outbox.clear()
        self._rx_boundaries.clear()
        was_open = self._open
        self._open = False
        self._credit_release(self._queued)
        self._release_reactor()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        if was_open and self.on_close is not None:
            self._scheduler.call_soon(self.on_close)
        if self._peer is not None:
            # scheduler mode has no readiness poll: the peer only learns
            # of the reset if its recv pump runs and reads the EOF/RST
            self._peer._schedule_recv()

    # -- closing ------------------------------------------------------------

    def abort(self) -> None:
        """RST this end: drop the outbox, kill the socket, free credit.

        The peer observes a genuine connection reset (or EOF) from the
        kernel — exactly what a crashed client or yanked cable produces —
        so every recovery path downstream exercises the same code as a
        real-world reset.
        """
        if not self._open:
            return
        # SO_LINGER(0) turns close() into a TCP RST on connected sockets;
        # on a socketpair the peer simply sees EOF, which is equally fatal
        # for a framed session mid-message.
        try:
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0))
        except OSError:  # pragma: no cover - platform without SO_LINGER
            pass
        self._on_reset()

    def close(self) -> None:
        """Close this half; outbox bytes still reach the peer first.

        Mirrors :meth:`Endpoint.close`'s TCP-like semantics: data already
        queued toward the peer is flushed, then the write side shuts down
        so the peer's pump sees EOF and fires its ``on_close``.  A
        reactor-registered transport keeps its fd until the remote's EOF
        arrives back (so the final flush is never cut short by a reset),
        then releases it.
        """
        if not self._open:
            return
        self._open = False
        self._wr_shutdown = True
        if self.on_close is not None:
            self._scheduler.call_soon(self.on_close)
        if self._outbox:
            # flush what the kernel takes now; the armed continuation
            # (readiness or the peer's drain) delivers the rest, and
            # _pump_send issues SHUT_WR once the outbox empties
            self._pump_send()
        else:
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        if self._peer is not None:
            self._peer._schedule_recv()


@dataclass
class SocketPair:
    """Both ends of one in-process socketpair transport."""

    a: SocketTransport
    b: SocketTransport

    def close(self) -> None:
        self.a.close()

    @property
    def total_bytes(self) -> int:
        return self.a.stats.bytes_sent + self.b.stats.bytes_sent


def make_socket_transport_pair(
    scheduler: Scheduler,
    profile: LinkProfile = LOOPBACK,
    name: str = "socket",
) -> SocketPair:
    """An in-process duplex byte stream over a real ``socketpair``.

    Drop-in substitute for :func:`~repro.net.pipe.make_pipe` wherever the
    stack needs proving against genuine kernel byte streams (arbitrary
    chunk re-segmentation, EOF-based close) rather than the simulator's
    message-boundary-preserving delivery.
    """
    try:
        sock_a, sock_b = socket.socketpair()
    except OSError as error:  # pragma: no cover - platform without AF_UNIX
        raise TransportError(f"cannot create socketpair: {error}") from error
    a = SocketTransport(scheduler, sock_a, profile, f"{name}.a")
    b = SocketTransport(scheduler, sock_b, profile, f"{name}.b")
    a._attach(b)
    b._attach(a)
    return SocketPair(a=a, b=b)

"""The fleet reactor: ``selectors`` I/O readiness grafted onto the
virtual-time :class:`~repro.util.scheduler.Scheduler`.

One process, many homes.  Every :class:`Home` keeps its own deterministic
scheduler and virtual clock; the :class:`Reactor` multiplexes all of them
over one ``selectors.DefaultSelector`` (epoll on Linux) together with the
real non-blocking sockets that carry UIP sessions in TCP mode.  A reactor
*turn* is:

1. **Scheduler slice** — every registered :class:`ReactorMember` fires up
   to its *event budget* of events already due on its own clock
   (:meth:`Scheduler.run_ready`).  The budget is the fairness mechanism:
   a home stuck in a self-perpetuating event storm burns its budget and
   yields, it cannot monopolise the turn.
2. **Readiness poll** — ``select()`` with timeout 0 while any member has
   pending events, blocking only when every scheduler is drained (the
   pure I/O wait the ROADMAP item asks for: the reactor sleeps in
   ``select`` exactly when the schedulers are idle).
3. **Clock advance** — when nothing is due *and* no fd is ready, each
   member's virtual clock jumps to its own next timed event, so link
   simulations and timers keep their virtual-time semantics at full
   machine speed instead of sleeping wall-clock.

Per-member **error containment**: an exception escaping a member's event
or socket callback quarantines that member — its events stop firing, its
handles are unregistered, the error is recorded — and the turn goes on.
One crashing home cannot take the fleet down (see
:mod:`repro.fleet`).

:class:`TcpListener` and :func:`connect_tcp` are the two ends of the real
TCP control plane: a listening socket per home whose accepted connections
become reactor-registered :class:`~repro.net.transport.SocketTransport`
instances, and non-blocking client connects for the proxies.
"""

from __future__ import annotations

import selectors
import socket
import time
import traceback
from typing import Callable, Optional

from repro.net.link import ETHERNET_100, LinkProfile
from repro.util.errors import ReactorError, TransportError
from repro.util.scheduler import Scheduler

#: Default per-member event budget per reactor turn.  Small enough that a
#: runaway home yields the turn quickly, large enough that a healthy
#: home's damage->composite->encode->send cascade completes in one slice.
DEFAULT_EVENT_BUDGET = 256


class ReactorMember:
    """One scheduler driven by the reactor, with isolation bookkeeping.

    A member is usually one :class:`~repro.home.Home`.  It carries the
    per-turn event budget, the quarantine flag, and the error trail; the
    reactor attributes socket callbacks to a member so a fault anywhere in
    that home's stack — event or I/O — lands on the same record.
    """

    def __init__(self, reactor: "Reactor", scheduler: Scheduler, name: str,
                 budget: int,
                 on_error: Optional[Callable[[BaseException], None]]) -> None:
        self.reactor = reactor
        self.scheduler = scheduler
        self.name = name
        self.budget = budget
        self.on_error = on_error
        #: Quarantined: events no longer fire, handles are unregistered.
        self.failed = False
        #: Wall-clock (``time.time``) moment of quarantine, None if healthy.
        self.failed_at: Optional[float] = None
        #: Every exception this member's events/callbacks raised.
        self.errors: list[BaseException] = []
        #: Formatted traceback for each entry in :attr:`errors`.
        self.tracebacks: list[str] = []
        self.events_fired = 0
        self.io_dispatches = 0

    @property
    def last_error(self) -> Optional[BaseException]:
        return self.errors[-1] if self.errors else None

    @property
    def last_traceback(self) -> Optional[str]:
        return self.tracebacks[-1] if self.tracebacks else None

    @property
    def partitioned(self) -> bool:
        return self.reactor.is_partitioned(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.failed:
            cause = type(self.last_error).__name__ if self.errors else "?"
            state = f"QUARANTINED({cause}) at={self.failed_at}"
        elif self.partitioned:
            state = "PARTITIONED"
        else:
            state = "ok"
        return (f"<ReactorMember {self.name!r} {state} "
                f"fired={self.events_fired}>")


class IOHandle:
    """One registered file object with mutable readiness interest.

    Interest starts as read-only (when an ``on_readable`` callback exists);
    transports arm write interest while their outbox is non-empty and
    disarm it once drained, which is what turns a full kernel buffer from
    a stall into a plain EPOLLOUT wait.
    """

    def __init__(self, reactor: "Reactor", fileobj, on_readable, on_writable,
                 member: Optional[ReactorMember]) -> None:
        self.reactor = reactor
        self.fileobj = fileobj
        self.on_readable = on_readable
        self.on_writable = on_writable
        self.member = member
        self._events = selectors.EVENT_READ if on_readable is not None else 0
        self.closed = False
        #: Suspended: interest bits are remembered but the fd is withdrawn
        #: from the selector (fault injection: a partitioned home's sockets
        #: stay open, the kernel queues, nothing is dispatched).
        self.suspended = False

    @property
    def events(self) -> int:
        return self._events

    @property
    def want_write(self) -> bool:
        return bool(self._events & selectors.EVENT_WRITE)

    def set_write_interest(self, want: bool) -> None:
        """Arm/disarm EPOLLOUT for this fd (idempotent)."""
        self._set(selectors.EVENT_WRITE, want)

    def set_read_interest(self, want: bool) -> None:
        self._set(selectors.EVENT_READ, want)

    def _set(self, bit: int, want: bool) -> None:
        if self.closed:
            return
        events = (self._events | bit) if want else (self._events & ~bit)
        if events == self._events:
            return
        self._events = events
        if not self.suspended:
            self.reactor._modify(self)

    def suspend(self) -> None:
        """Withdraw the fd from the selector without losing interest bits.

        While suspended, ``set_*_interest`` updates are remembered but not
        applied; :meth:`resume` re-registers with whatever interest the
        owner holds by then.  This is the partition primitive: the socket
        stays open (the kernel keeps queueing), the application goes deaf.
        """
        if self.closed or self.suspended:
            return
        self.suspended = True
        self.reactor._withdraw(self)

    def resume(self) -> None:
        if self.closed or not self.suspended:
            return
        self.suspended = False
        self.reactor._modify(self)

    def unregister(self) -> None:
        """Remove this fd from the reactor (idempotent); never closes it."""
        if not self.closed:
            self.closed = True
            self.reactor._unregister(self)


class Reactor:
    """A ``selectors``-based event loop over many virtual-time schedulers.

    See the module docstring for turn anatomy.  The reactor never owns the
    sockets it polls — transports and listeners register and unregister
    themselves — but :meth:`close` tears down the selector for tests.
    """

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._members: list[ReactorMember] = []
        self._handles: dict[int, IOHandle] = {}
        self._partitioned: set[int] = set()  # id(member)
        # reactor-wide diagnostics (bench_fleet reads these)
        self.turns = 0
        self.io_events = 0
        self.errors: list[tuple[Optional[str], BaseException]] = []
        self._closed = False

    # -- membership ----------------------------------------------------------

    def add_scheduler(self, scheduler: Scheduler, name: str = "member",
                      budget: int = DEFAULT_EVENT_BUDGET,
                      on_error: Optional[Callable[[BaseException], None]]
                      = None) -> ReactorMember:
        """Drive ``scheduler`` from this reactor's turns.

        ``budget`` caps events fired per turn (fairness); ``on_error`` is
        invoked (after quarantine) with any exception the member raises.
        """
        if budget < 1:
            raise ReactorError(f"event budget must be >= 1, got {budget}")
        for member in self._members:
            if member.scheduler is scheduler:
                raise ReactorError("scheduler is already a reactor member")
        member = ReactorMember(self, scheduler, name, budget, on_error)
        self._members.append(member)
        return member

    def remove_scheduler(self, member: ReactorMember) -> None:
        """Forget a member; its registered handles are unregistered too."""
        if member in self._members:
            self._members.remove(member)
        self._partitioned.discard(id(member))
        self._drop_member_handles(member)

    @property
    def members(self) -> tuple[ReactorMember, ...]:
        return tuple(self._members)

    @property
    def failed_members(self) -> tuple[ReactorMember, ...]:
        return tuple(m for m in self._members if m.failed)

    # -- fd registration -----------------------------------------------------

    def register(self, fileobj, on_readable=None, on_writable=None,
                 member: Optional[ReactorMember] = None) -> IOHandle:
        """Watch ``fileobj`` for readiness; returns its :class:`IOHandle`.

        ``member`` attributes callback errors to that member's quarantine
        accounting (one home's socket fault is that home's fault).
        """
        if self._closed:
            raise ReactorError("reactor is closed")
        fd = fileobj.fileno()
        if fd in self._handles:
            raise ReactorError(f"fd {fd} is already registered")
        handle = IOHandle(self, fileobj, on_readable, on_writable, member)
        self._handles[fd] = handle
        if member is not None and id(member) in self._partitioned:
            # fds born inside a partition are deaf until it heals: a
            # reconnect dialled across the cut must not sneak through.
            handle.suspended = True
        elif handle.events:
            self._selector.register(fileobj, handle.events, handle)
        return handle

    def _modify(self, handle: IOHandle) -> None:
        fd = handle.fileobj.fileno()
        registered = self._selector.get_map() or {}
        if fd in registered:
            if handle.events:
                self._selector.modify(handle.fileobj, handle.events, handle)
            else:
                self._selector.unregister(handle.fileobj)
        elif handle.events:
            self._selector.register(handle.fileobj, handle.events, handle)

    def _withdraw(self, handle: IOHandle) -> None:
        """Drop a handle from the selector, keeping it registered."""
        try:
            self._selector.unregister(handle.fileobj)
        except (KeyError, ValueError, OSError):
            pass  # zero-interest handles are not in the selector

    def _unregister(self, handle: IOHandle) -> None:
        fd = None
        for key, known in list(self._handles.items()):
            if known is handle:
                fd = key
                break
        if fd is None:
            return
        del self._handles[fd]
        try:
            self._selector.unregister(handle.fileobj)
        except (KeyError, ValueError, OSError):
            pass  # zero-interest handles are not in the selector

    def handles_of(self, member: ReactorMember) -> tuple[IOHandle, ...]:
        """Every registered handle attributed to ``member`` (teardown and
        diagnostics: a home hard-closes exactly its own fds this way)."""
        return tuple(h for h in self._handles.values()
                     if h.member is member)

    def _drop_member_handles(self, member: ReactorMember) -> None:
        for handle in self.handles_of(member):
            handle.unregister()

    @property
    def handle_count(self) -> int:
        return len(self._handles)

    # -- partitioning (fault injection) --------------------------------------

    def partition_member(self, member: ReactorMember) -> None:
        """Cut a member off from I/O: every handle it owns (and any it
        opens until :meth:`heal_member`) is suspended.  Its scheduler keeps
        running — timers fire, heartbeats time out — but no byte crosses
        the cut in either direction at the application layer."""
        self._partitioned.add(id(member))
        for handle in self.handles_of(member):
            handle.suspend()

    def heal_member(self, member: ReactorMember) -> None:
        """Undo :meth:`partition_member`; queued kernel bytes dispatch on
        the next turn."""
        self._partitioned.discard(id(member))
        for handle in self.handles_of(member):
            handle.resume()

    def is_partitioned(self, member: ReactorMember) -> bool:
        return id(member) in self._partitioned

    # -- error containment ---------------------------------------------------

    def _contain(self, member: Optional[ReactorMember],
                 error: BaseException) -> None:
        """Quarantine the faulty member (or handle) and record the error."""
        self.errors.append((member.name if member else None, error))
        if member is not None:
            member.failed = True
            if member.failed_at is None:
                member.failed_at = time.time()
            member.errors.append(error)
            member.tracebacks.append("".join(traceback.format_exception(
                type(error), error, error.__traceback__)))
            self._drop_member_handles(member)
            if member.on_error is not None:
                member.on_error(error)

    # -- the turn ------------------------------------------------------------

    def _live_members(self) -> list[ReactorMember]:
        return [m for m in self._members if not m.failed]

    def turn(self, block_s: float = 0.0) -> bool:
        """One reactor turn; returns True when any work happened.

        ``block_s`` bounds how long ``select()`` may sleep when every
        scheduler is drained (pure I/O wait); it is 0 whenever any member
        still has pending events, so the schedulers never starve behind
        the poll.
        """
        if self._closed:
            raise ReactorError("reactor is closed")
        self.turns += 1
        worked = False
        members = self._live_members()
        # per-turn work attribution: a member whose own events and fds
        # were silent this turn may fast-forward its clock in step 3,
        # even while a sibling storms (global gating would let one busy
        # tenant freeze every other home's virtual time)
        turn_work = {id(m): 0 for m in members}
        # 1. scheduler slice: budgeted due events per member, contained
        for member in members:
            try:
                fired = member.scheduler.run_ready(member.budget)
            except Exception as error:
                self._contain(member, error)
                worked = True
                continue
            member.events_fired += fired
            turn_work[id(member)] = fired
            worked = worked or fired > 0
        # 2. readiness poll: never sleep while schedulers hold work
        pending = any(m.scheduler.pending_count() > 0
                      for m in self._live_members())
        timeout = 0.0 if (worked or pending) else block_s
        if self._handles:
            ready = self._selector.select(timeout)
        else:
            ready = []
        for key, mask in ready:
            handle: IOHandle = key.data
            if handle.closed:
                continue
            self.io_events += 1
            worked = True
            if handle.member is not None:
                handle.member.io_dispatches += 1
                if id(handle.member) in turn_work:
                    turn_work[id(handle.member)] += 1
            try:
                if mask & selectors.EVENT_WRITE and handle.on_writable:
                    handle.on_writable()
                if (mask & selectors.EVENT_READ and handle.on_readable
                        and not handle.closed):
                    handle.on_readable()
            except Exception as error:
                if handle.member is not None:
                    self._contain(handle.member, error)
                else:
                    # orphan handle: record and stop polling it so a hot
                    # error cannot spin the loop
                    self.errors.append((None, error))
                    handle.unregister()
        # 3. clock advance: a member whose events and fds were both
        # silent this turn fast-forwards its own virtual clock to its
        # next timed event.  Per-member, not global: a storming sibling
        # must not freeze this home's timers.  A member that just took
        # an I/O dispatch skips the jump — its callbacks' consequences
        # (which may cancel those timers) get to land first.
        for member in self._live_members():
            if turn_work.get(id(member), 1) != 0:
                continue
            when = member.scheduler.next_event_time()
            if when is not None and when > member.scheduler.now():
                member.scheduler.clock.advance_to(when)
                worked = True
        return worked

    # -- driving -------------------------------------------------------------

    def run_until_idle(self, max_turns: int = 1_000_000,
                       grace_s: float = 0.001, confirm: int = 2) -> int:
        """Turn until every scheduler is drained and no fd goes ready.

        Real sockets make quiescence racy (loopback bytes can sit in the
        kernel between two polls), so idleness must be *confirmed*:
        ``confirm`` consecutive turns with zero work, each allowing
        ``select`` up to ``grace_s`` to surface a late arrival.  Returns
        the number of turns taken.
        """
        idle_streak = 0
        for turn_no in range(max_turns):
            if self.turn(block_s=grace_s):
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak >= confirm:
                    return turn_no + 1
        raise ReactorError(
            f"run_until_idle exceeded {max_turns} turns; "
            "likely a self-perpetuating event loop in a member "
            "(quarantine only guards *raising* members)")

    def run_until(self, predicate: Callable[[], bool],
                  timeout_s: Optional[float] = 5.0,
                  max_turns: int = 1_000_000) -> bool:
        """Turn until ``predicate()`` holds; False on timeout.

        ``timeout_s`` is wall-clock (monotonic) — this is the primitive
        that waits for real TCP handshakes and accepts to land.
        """
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        for _ in range(max_turns):
            if predicate():
                return True
            self.turn(block_s=0.001)
            if deadline is not None and time.monotonic() > deadline:
                return predicate()
        raise ReactorError(f"run_until exceeded {max_turns} turns")

    def close(self) -> None:
        """Tear down: unregister every handle and close the selector.

        Registered sockets are *not* closed — their owners (transports,
        listeners) keep that responsibility.
        """
        if self._closed:
            return
        self._closed = True
        for handle in list(self._handles.values()):
            handle.unregister()
        self._selector.close()
        self._members.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        failed = [m.name for m in self._members if m.failed]
        tail = f" quarantined={failed}" if failed else ""
        return (f"<Reactor members={len(self._members)} "
                f"handles={len(self._handles)} turns={self.turns}{tail}>")


class TcpListener:
    """A real listening TCP socket whose accepts arrive as reactor events.

    ``on_accept(conn, addr)`` receives each accepted connection as an
    already-non-blocking, TCP_NODELAY socket; wrapping it in a
    :class:`~repro.net.transport.SocketTransport` (and registering that
    with the reactor) is the caller's move — see
    :meth:`repro.server.uniint_server.UniIntServer.listen`.
    """

    def __init__(self, reactor: Reactor,
                 on_accept: Callable[[socket.socket, tuple], None],
                 host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 128,
                 member: Optional[ReactorMember] = None) -> None:
        self.reactor = reactor
        self.on_accept = on_accept
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen(backlog)
            sock.setblocking(False)
        except OSError as error:
            sock.close()
            raise TransportError(f"cannot listen on {host}:{port}: "
                                 f"{error}") from error
        self._sock = sock
        self.address: tuple[str, int] = sock.getsockname()
        self.accepted = 0
        self._handle = reactor.register(sock, on_readable=self._on_readable,
                                        member=member)

    @property
    def port(self) -> int:
        return self.address[1]

    def _on_readable(self) -> None:
        while True:
            try:
                conn, addr = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us
            conn.setblocking(False)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform quirk
                pass
            self.accepted += 1
            try:
                self.on_accept(conn, addr)
            except BaseException:
                # the callback never took ownership: close the socket so a
                # raising acceptor can't leak fds, then let the reactor's
                # containment see the error
                conn.close()
                raise

    def close(self) -> None:
        self._handle.unregister()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TcpListener {self.address[0]}:{self.port}>"


def connect_tcp(reactor: Reactor, scheduler: Scheduler,
                address: tuple[str, int],
                profile: LinkProfile = ETHERNET_100,
                name: str = "tcp-client",
                member: Optional[ReactorMember] = None):
    """Open a non-blocking TCP client transport through the reactor.

    Returns a reactor-registered
    :class:`~repro.net.transport.SocketTransport` immediately; the connect
    completes asynchronously (EPOLLOUT), and any bytes sent meanwhile wait
    in the transport's outbox.  Drive the reactor to make progress.
    """
    from repro.net.transport import SocketTransport

    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setblocking(False)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.connect(address)
    except (BlockingIOError, InterruptedError):
        pass  # connect in progress: EPOLLOUT will say when
    except OSError as error:
        sock.close()
        raise TransportError(
            f"cannot connect to {address}: {error}") from error
    transport = SocketTransport(scheduler, sock, profile, name,
                                connecting=True)
    transport.attach_reactor(reactor, member=member)
    return transport

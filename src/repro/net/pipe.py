"""Scheduled duplex byte pipes.

:func:`make_pipe` returns two :class:`Endpoint` halves of a duplex channel.
Bytes written to one half arrive at the other after the link-profile delay,
in FIFO order (a later send never overtakes an earlier one, even with
jitter).  Delivery happens as scheduler events, so nothing moves until the
simulation runs.

Endpoints carry byte counters used by the bandwidth experiments (E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.link import LOOPBACK, LinkProfile
from repro.util.errors import TransportClosed
from repro.util.scheduler import Scheduler


@dataclass
class PipeStats:
    """Per-endpoint traffic counters."""

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped: int = 0

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.messages_dropped = 0


class Endpoint:
    """One half of a duplex pipe.

    Attributes:
        on_receive: callback ``(data: bytes) -> None`` invoked at delivery
            time.  If unset when data arrives, the data is buffered and
            flushed to the callback once it is assigned.
        on_close: optional callback invoked once when the peer closes.
    """

    def __init__(self, scheduler: Scheduler, profile: LinkProfile, name: str,
                 rng: random.Random) -> None:
        self._scheduler = scheduler
        self._profile = profile
        self.name = name
        self._rng = rng
        self._peer: Optional["Endpoint"] = None
        self._link_free_at = 0.0
        self._last_arrival = 0.0
        self._open = True
        self._pending: list[bytes] = []
        self._on_receive: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.stats = PipeStats()

    # -- wiring -------------------------------------------------------------

    def _attach(self, peer: "Endpoint") -> None:
        self._peer = peer

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def profile(self) -> LinkProfile:
        return self._profile

    @property
    def on_receive(self) -> Optional[Callable[[bytes], None]]:
        return self._on_receive

    @on_receive.setter
    def on_receive(self, callback: Optional[Callable[[bytes], None]]) -> None:
        self._on_receive = callback
        if callback is not None and self._pending:
            pending, self._pending = self._pending, []
            for chunk in pending:
                callback(chunk)

    # -- sending ------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Queue ``data`` for delivery to the peer after the link delay."""
        if not self._open:
            raise TransportClosed(f"endpoint {self.name} is closed")
        if self._peer is None:
            raise TransportClosed(f"endpoint {self.name} has no peer")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"pipe payload must be bytes, got {type(data)!r}")
        data = bytes(data)
        self.stats.bytes_sent += len(data)
        self.stats.messages_sent += 1
        if self._profile.sample_loss(self._rng):
            self.stats.messages_dropped += 1
            return
        now = self._scheduler.now()
        start = max(now, self._link_free_at)
        tx_done = start + self._profile.transmission_time(len(data))
        self._link_free_at = tx_done
        arrival = tx_done + self._profile.latency_s
        arrival += self._profile.sample_jitter(self._rng)
        # FIFO guarantee: never deliver before an earlier message.
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        self._scheduler.call_at(arrival, self._deliver, data)

    def _deliver(self, data: bytes) -> None:
        peer = self._peer
        if peer is None or not peer._open:
            return
        peer.stats.bytes_received += len(data)
        peer.stats.messages_received += 1
        if peer._on_receive is not None:
            peer._on_receive(data)
        else:
            peer._pending.append(data)

    # -- closing ------------------------------------------------------------

    def close(self) -> None:
        """Close this half; the peer learns of it after in-flight data.

        TCP-like semantics: bytes already "on the wire" toward the peer
        still arrive (a final status message survives an immediate close);
        the peer's ``on_close`` fires only after the last of them.  Data in
        flight *toward* the closing side is discarded.
        """
        if not self._open:
            return
        self._open = False
        if self.on_close is not None:
            self._scheduler.call_soon(self.on_close)
        peer = self._peer
        if peer is not None and peer._open:
            when = max(self._scheduler.now(), self._last_arrival)
            self._scheduler.call_at(when, self._close_peer)

    def _close_peer(self) -> None:
        peer = self._peer
        if peer is None or not peer._open:
            return
        peer._open = False
        if peer.on_close is not None:
            peer.on_close()


@dataclass
class Pipe:
    """A duplex channel: two attached endpoints plus the shared profile."""

    a: Endpoint
    b: Endpoint
    profile: LinkProfile = field(default=LOOPBACK)

    def close(self) -> None:
        self.a.close()

    @property
    def total_bytes(self) -> int:
        """Bytes sent over the pipe in both directions."""
        return self.a.stats.bytes_sent + self.b.stats.bytes_sent


def make_pipe(
    scheduler: Scheduler,
    profile: LinkProfile = LOOPBACK,
    name: str = "pipe",
    seed: int = 0,
) -> Pipe:
    """Create a duplex pipe; both directions share one link profile.

    ``seed`` controls jitter/loss sampling so traces are reproducible.
    """
    rng = random.Random((name, seed).__repr__())
    a = Endpoint(scheduler, profile, f"{name}.a", rng)
    b = Endpoint(scheduler, profile, f"{name}.b", rng)
    a._attach(b)
    b._attach(a)
    return Pipe(a=a, b=b, profile=profile)

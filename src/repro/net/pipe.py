"""Scheduled duplex byte pipes: the simulated Transport implementation.

:func:`make_pipe` returns two :class:`Endpoint` halves of a duplex channel.
Bytes written to one half arrive at the other after the link-profile delay,
in FIFO order (a later send never overtakes an earlier one, even with
jitter).  Delivery happens as scheduler events, so nothing moves until the
simulation runs.

:class:`Endpoint` implements the :class:`~repro.net.transport.Transport`
interface: sends accept chunk lists (scatter-gather — the chunks cross the
simulated wire without ever being concatenated), and bytes scheduled but
not yet delivered count against the transport's credit, driving the
:attr:`~repro.net.transport.Transport.writable` backpressure signal.

Endpoints carry byte counters used by the bandwidth experiments (E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.net.link import LOOPBACK, LinkProfile
from repro.net.transport import Transport, TransportStats
from repro.util.errors import TransportClosed
from repro.util.scheduler import Scheduler

#: Back-compat alias: pipe stats predate the Transport abstraction.
PipeStats = TransportStats


class Endpoint(Transport):
    """One half of a duplex pipe.

    Attributes:
        on_receive: callback ``(data: bytes) -> None`` invoked at delivery
            time.  If unset when data arrives, the data is buffered and
            flushed to the callback once it is assigned.  A chunk-list
            send is delivered as one scheduler event but one callback per
            chunk — exactly how a real byte stream may re-segment, which
            the stream decoders are split-point invariant to.
        on_close: optional callback invoked once when the peer closes.
        on_writable: optional callback invoked when the scheduled-but-
            undelivered backlog drains below the credit low watermark.
    """

    def __init__(self, scheduler: Scheduler, profile: LinkProfile, name: str,
                 rng: random.Random) -> None:
        super().__init__(profile, name)
        self._scheduler = scheduler
        self._rng = rng
        self._peer: Optional["Endpoint"] = None
        self._link_free_at = 0.0
        self._last_arrival = 0.0
        # Scheduled-but-undelivered transmissions, so abort() can yank
        # them off the wire (a reset loses in-flight data, close doesn't).
        self._in_flight: dict[int, object] = {}
        self._next_flight = 0

    # -- wiring -------------------------------------------------------------

    def _attach(self, peer: "Endpoint") -> None:
        self._peer = peer

    # -- sending ------------------------------------------------------------

    def _write(self, chunks: list[bytes], total: int) -> None:
        """Schedule delivery of the chunks after the link delay."""
        if self._peer is None:
            raise TransportClosed(f"endpoint {self.name} has no peer")
        if self._profile.sample_loss(self._rng):
            self.stats.messages_dropped += 1
            return
        now = self._scheduler.now()
        start = max(now, self._link_free_at)
        tx_done = start + self._profile.transmission_time(total)
        self._link_free_at = tx_done
        arrival = tx_done + self._profile.latency_s
        arrival += self._profile.sample_jitter(self._rng)
        # FIFO guarantee: never deliver before an earlier message.
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        self._credit_charge(total)
        flight = self._next_flight
        self._next_flight += 1
        self._in_flight[flight] = self._scheduler.call_at(
            arrival, self._deliver, chunks, total, flight)

    def _deliver(self, chunks: list[bytes], total: int,
                 flight: int) -> None:
        self._in_flight.pop(flight, None)
        peer = self._peer
        if peer is not None and peer._open:
            peer.stats.bytes_received += total
            peer.stats.messages_received += 1
            for chunk in chunks:
                peer._dispatch(chunk)
        # Credit returns even when the peer vanished mid-flight: the bytes
        # have left this sender's queue either way.
        self._credit_release(total)

    # -- closing ------------------------------------------------------------

    def abort(self) -> None:
        """Reset the whole pipe: both halves die *now*, in-flight data is
        lost in both directions, and all charged credit comes back.

        This is the simulated-link equivalent of a TCP RST — the recovery
        machinery (session parking, reconnect backoff) sees the same
        abrupt ``on_close`` a kernel reset would produce.
        """
        for half in (self, self._peer):
            if half is None or not half._open:
                continue
            half._open = False
            for event in half._in_flight.values():
                event.cancel()
            half._in_flight.clear()
            half._credit_release(half._queued)
            if half.on_close is not None:
                half._scheduler.call_soon(half.on_close)

    def close(self) -> None:
        """Close this half; the peer learns of it after in-flight data.

        TCP-like semantics: bytes already "on the wire" toward the peer
        still arrive (a final status message survives an immediate close);
        the peer's ``on_close`` fires only after the last of them.  Data in
        flight *toward* the closing side is discarded.
        """
        if not self._open:
            return
        self._open = False
        if self.on_close is not None:
            self._scheduler.call_soon(self.on_close)
        peer = self._peer
        if peer is not None and peer._open:
            when = max(self._scheduler.now(), self._last_arrival)
            self._scheduler.call_at(when, self._close_peer)

    def _close_peer(self) -> None:
        peer = self._peer
        if peer is None or not peer._open:
            return
        peer._open = False
        if peer.on_close is not None:
            peer.on_close()


@dataclass
class Pipe:
    """A duplex channel: two attached endpoints plus the shared profile."""

    a: Endpoint
    b: Endpoint
    profile: LinkProfile = field(default=LOOPBACK)

    def close(self) -> None:
        self.a.close()

    @property
    def total_bytes(self) -> int:
        """Bytes sent over the pipe in both directions."""
        return self.a.stats.bytes_sent + self.b.stats.bytes_sent


def make_pipe(
    scheduler: Scheduler,
    profile: LinkProfile = LOOPBACK,
    name: str = "pipe",
    seed: int = 0,
) -> Pipe:
    """Create a duplex pipe; both directions share one link profile.

    ``seed`` controls jitter/loss sampling so traces are reproducible.
    """
    rng = random.Random((name, seed).__repr__())
    a = Endpoint(scheduler, profile, f"{name}.a", rng)
    b = Endpoint(scheduler, profile, f"{name}.b", rng)
    a._attach(b)
    b._attach(a)
    return Pipe(a=a, b=b, profile=profile)

"""Simulated network substrate.

The 2002 prototype ran over a home LAN plus whatever bearer each interaction
device had (802.11b for PDAs, PDC cellular links for phones, IrDA for
remotes).  We model links as :class:`LinkProfile` objects (latency, bandwidth,
jitter, loss) and move bytes over :class:`Pipe` endpoints scheduled on the
virtual clock, so every delivery time is deterministic.
"""

from repro.net.link import (
    BLUETOOTH_1,
    CELLULAR_PDC,
    ETHERNET_100,
    INFRARED_IRDA,
    LOOPBACK,
    WIFI_11B,
    LinkProfile,
)
from repro.net.pipe import Endpoint, Pipe, PipeStats, make_pipe
from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    FaultySocket,
    FaultyTransport,
    inject_socket_faults,
)
from repro.net.framing import FrameAssembler, encode_frame, frame_chunks
from repro.net.reactor import (
    DEFAULT_EVENT_BUDGET,
    IOHandle,
    Reactor,
    ReactorMember,
    TcpListener,
    connect_tcp,
)
from repro.net.transport import (
    SocketPair,
    SocketTransport,
    Transport,
    TransportStats,
    credit_watermarks,
    make_socket_transport_pair,
)
from repro.util.errors import TransportError
from repro.util.scheduler import Scheduler
from typing import Union

#: Both duplex transport pair flavours a leg can ride on.
TransportPair = Union[Pipe, SocketPair]

#: Transport kinds a Home leg can ride on.  ``"pipe"`` and ``"socket"``
#: are in-process pairs built by :func:`make_transport_pair`; ``"tcp"``
#: is a real listener/connect leg driven by a :class:`Reactor` (built by
#: :class:`TcpListener` + :func:`connect_tcp`, never as a pair).
TRANSPORT_KINDS = ("pipe", "socket", "tcp")


def make_transport_pair(scheduler: Scheduler,
                        profile: LinkProfile = LOOPBACK,
                        name: str = "link",
                        kind: str = "pipe",
                        seed: int = 0) -> TransportPair:
    """One factory for every duplex transport leg in the stack.

    ``kind="pipe"`` is the deterministic virtual-time pipe shaped by the
    link profile's timing model; ``kind="socket"`` moves real bytes over a
    kernel socketpair (no link timing, credit still sized from the
    profile).  The Home facade and the device legs both dispatch here, so
    a new transport kind lands in one place.
    """
    if kind == "pipe":
        return make_pipe(scheduler, profile, name=name, seed=seed)
    if kind == "socket":
        return make_socket_transport_pair(scheduler, profile, name=name)
    if kind == "tcp":
        raise TransportError(
            "tcp transports are not built as in-process pairs: accept one "
            "side from a TcpListener and dial the other with connect_tcp "
            "on a Reactor")
    raise TransportError(f"unknown transport {kind!r} "
                         f"(expected one of {TRANSPORT_KINDS})")


__all__ = [
    "BLUETOOTH_1",
    "CELLULAR_PDC",
    "DEFAULT_EVENT_BUDGET",
    "ETHERNET_100",
    "Endpoint",
    "FaultInjector",
    "FaultPlan",
    "FaultySocket",
    "FaultyTransport",
    "FrameAssembler",
    "INFRARED_IRDA",
    "IOHandle",
    "LOOPBACK",
    "LinkProfile",
    "Pipe",
    "PipeStats",
    "Reactor",
    "ReactorMember",
    "SocketPair",
    "SocketTransport",
    "TRANSPORT_KINDS",
    "TcpListener",
    "Transport",
    "TransportError",
    "TransportPair",
    "TransportStats",
    "WIFI_11B",
    "connect_tcp",
    "credit_watermarks",
    "encode_frame",
    "frame_chunks",
    "inject_socket_faults",
    "make_pipe",
    "make_socket_transport_pair",
    "make_transport_pair",
]

"""Simulated network substrate.

The 2002 prototype ran over a home LAN plus whatever bearer each interaction
device had (802.11b for PDAs, PDC cellular links for phones, IrDA for
remotes).  We model links as :class:`LinkProfile` objects (latency, bandwidth,
jitter, loss) and move bytes over :class:`Pipe` endpoints scheduled on the
virtual clock, so every delivery time is deterministic.
"""

from repro.net.link import (
    BLUETOOTH_1,
    CELLULAR_PDC,
    ETHERNET_100,
    INFRARED_IRDA,
    LOOPBACK,
    WIFI_11B,
    LinkProfile,
)
from repro.net.pipe import Endpoint, Pipe, PipeStats, make_pipe
from repro.net.framing import FrameAssembler, encode_frame, frame_chunks
from repro.net.transport import (
    SocketPair,
    SocketTransport,
    Transport,
    TransportStats,
    credit_watermarks,
    make_socket_transport_pair,
)

__all__ = [
    "BLUETOOTH_1",
    "CELLULAR_PDC",
    "ETHERNET_100",
    "Endpoint",
    "FrameAssembler",
    "INFRARED_IRDA",
    "LOOPBACK",
    "LinkProfile",
    "Pipe",
    "PipeStats",
    "SocketPair",
    "SocketTransport",
    "Transport",
    "TransportStats",
    "WIFI_11B",
    "credit_watermarks",
    "encode_frame",
    "frame_chunks",
    "make_pipe",
    "make_socket_transport_pair",
]

"""Deterministic fault injection for the transport stack.

PR 6 proved the socket pumps against a hand-rolled "hostile kernel" shim
that lived inside one property test.  This module ships that idea as a
first-class subsystem, usable from tests, benchmarks, and chaos drills:

* :class:`FaultPlan` — a seeded, declarative schedule of misbehaviour:
  frame-level fault rates (drop / duplicate / delay / truncate) and exact
  byte offsets at which syscalls fail with a chosen errno.
* :class:`FaultyTransport` — wraps any :class:`~repro.net.transport.
  Transport` and applies the plan's frame faults to ``send``; can also
  stall the link for T virtual seconds (frames queue, then flush in
  order).
* :class:`FaultySocket` — wraps a real socket so a
  :class:`~repro.net.transport.SocketTransport` experiences EINTR /
  EAGAIN / ECONNRESET / partial writes exactly where the plan says.
* :class:`FaultInjector` — reactor-level faults: RST a live transport,
  partition a whole home (every fd it owns goes deaf, its clock keeps
  running), crash a home inside its own event loop.

Everything is driven by explicit seeds and virtual-time schedulers, so a
chaos run replays byte-for-byte: the same plan against the same fleet
produces the same fault sequence, the same recoveries, the same bench
numbers.

A word on what is safe to inject where: frame drops/duplicates/delays
assume the wrapped channel carries *self-delimiting* frames (the framed
device legs, where every send is one length-prefixed message).  The raw
UIP byte stream is not self-delimiting — dropping bytes from it desyncs
the decoder permanently, which is exactly what ``truncate`` is for when
corruption-robustness is the point.  Syscall faults (:class:`FaultySocket`)
are always safe: they model the kernel, not the wire, and the pumps must
mask them.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.transport import Payload, SocketTransport, Transport, as_chunks
from repro.util.errors import TransportError
from repro.util.scheduler import Scheduler

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultySocket",
    "FaultyTransport",
    "inject_socket_faults",
]


@dataclass
class FaultPlan:
    """A declarative, seeded schedule of transport misbehaviour.

    Frame-level rates are *exclusive* probabilities (one roll per frame
    decides its fate), so ``drop + truncate + duplicate + delay`` must not
    exceed 1.0.  Syscall injections are exact one-shots: "the send syscall
    covering byte offset 4096 fails with EINTR".

    One plan may arm many wrappers; each wrapper derives its own RNG
    stream from ``(plan.seed, wrapper name)`` and consumes its own copy of
    the syscall schedule, so wrappers never perturb each other and a
    wrapper's fault sequence is a pure function of the plan and its name.
    """

    seed: int = 0
    #: Probability a frame silently vanishes.
    drop: float = 0.0
    #: Probability a frame is sent twice back-to-back.
    duplicate: float = 0.0
    #: Probability a frame is held for :attr:`delay_s` before sending.
    delay: float = 0.0
    #: Virtual seconds a delayed frame is held.
    delay_s: float = 0.05
    #: Probability a frame is cut to a strict prefix (corruption model).
    truncate: float = 0.0
    #: Probability a ``sendmsg`` accepts only a prefix of the iovec
    #: (partial write — the pumps must resume from the split point).
    partial: float = 0.0
    #: One-shot syscall failures: (side, byte offset, errno).  ``side`` is
    #: ``"send"`` or ``"recv"``; the offset counts cumulative bytes moved
    #: through the wrapped socket in that direction.
    syscall_faults: List[Tuple[str, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        total = self.drop + self.duplicate + self.delay + self.truncate
        if total > 1.0:
            raise TransportError(
                f"frame fault rates sum to {total}; they are exclusive "
                "outcomes of one roll and must sum to <= 1.0")
        for rate in (self.drop, self.duplicate, self.delay, self.truncate,
                     self.partial):
            if not 0.0 <= rate <= 1.0:
                raise TransportError(f"fault rate {rate} outside [0, 1]")

    def errno_at(self, offset: int, err: int,
                 side: str = "send") -> "FaultPlan":
        """Schedule the syscall covering byte ``offset`` (cumulative, per
        direction) to fail once with ``err``.  Returns ``self`` so plans
        read as builder chains."""
        if side not in ("send", "recv"):
            raise TransportError(f"side must be 'send' or 'recv', "
                                 f"got {side!r}")
        self.syscall_faults.append((side, offset, err))
        return self

    def rng_for(self, name: str) -> random.Random:
        """The wrapper-private RNG stream for ``name``."""
        return random.Random(repr((self.seed, name)))


class FaultyTransport:
    """A :class:`Transport` wrapper that applies a plan's frame faults.

    Pure delegation, not inheritance: credit accounting, stats, and
    callbacks all live in the wrapped transport (wrapping must not
    double-count), this class only intercepts ``send``.  It therefore
    quacks like a Transport everywhere the stack cares — ``on_receive`` /
    ``on_close`` / ``on_writable`` assignments pass straight through.

    ``stall(T)`` models a frozen link: frames queue here (not in the
    transport) and flush in order when the stall lifts — one-shot timers
    only, so reactor ``run_until_idle`` still terminates.
    """

    def __init__(self, inner: Transport, plan: FaultPlan,
                 scheduler: Scheduler, name: Optional[str] = None) -> None:
        self.inner = inner
        self.plan = plan
        self._scheduler = scheduler
        self.fault_name = name if name is not None else inner.name
        self._rng = plan.rng_for(self.fault_name)
        self._stalled = False
        self._stall_buffer: list = []
        # chaos accounting (bench_resilience reads these)
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.frames_delayed = 0
        self.frames_truncated = 0
        self.frames_stalled = 0
        self.frames_passed = 0

    # -- the faulted send path ----------------------------------------------

    def send(self, data: Payload) -> None:
        if self._stalled:
            chunks, _ = as_chunks(data)
            self._stall_buffer.append(chunks)
            self.frames_stalled += 1
            return
        chunks, total = as_chunks(data)
        roll = self._rng.random()
        plan = self.plan
        if roll < plan.drop:
            self.frames_dropped += 1
            return
        roll -= plan.drop
        if roll < plan.truncate and total > 1:
            cut = self._rng.randrange(1, total)
            kept: list[bytes] = []
            for chunk in chunks:
                if cut <= 0:
                    break
                kept.append(chunk[:cut])
                cut -= len(chunk)
            self.frames_truncated += 1
            self.inner.send(kept)
            return
        roll -= plan.truncate
        if roll < plan.duplicate:
            self.frames_duplicated += 1
            self.inner.send(chunks)
            self.inner.send(chunks)
            return
        roll -= plan.duplicate
        if roll < plan.delay:
            self.frames_delayed += 1
            self._scheduler.call_later(plan.delay_s, self._send_late, chunks)
            return
        self.frames_passed += 1
        self.inner.send(chunks)

    def _send_late(self, chunks: list) -> None:
        if self.inner.is_open:
            self.inner.send(chunks)

    # -- stalls ---------------------------------------------------------------

    @property
    def stalled(self) -> bool:
        return self._stalled

    def stall(self, duration_s: Optional[float] = None) -> None:
        """Freeze the link: sends queue here until :meth:`unstall` (or for
        ``duration_s`` virtual seconds if given)."""
        self._stalled = True
        if duration_s is not None:
            self._scheduler.call_later(duration_s, self.unstall)

    def unstall(self) -> None:
        if not self._stalled:
            return
        self._stalled = False
        buffered, self._stall_buffer = self._stall_buffer, []
        for chunks in buffered:
            if self.inner.is_open:
                self.inner.send(chunks)

    # -- transparent delegation ----------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def is_open(self) -> bool:
        return self.inner.is_open

    @property
    def writable(self) -> bool:
        return self.inner.writable

    @property
    def queued_bytes(self) -> int:
        return self.inner.queued_bytes

    @property
    def credit_limit(self) -> int:
        return self.inner.credit_limit

    @property
    def stats(self):
        return self.inner.stats

    @property
    def profile(self):
        return self.inner.profile

    @property
    def on_receive(self):
        return self.inner.on_receive

    @on_receive.setter
    def on_receive(self, callback) -> None:
        self.inner.on_receive = callback

    @property
    def on_close(self):
        return self.inner.on_close

    @on_close.setter
    def on_close(self, callback) -> None:
        self.inner.on_close = callback

    @property
    def on_writable(self):
        return self.inner.on_writable

    @on_writable.setter
    def on_writable(self, callback) -> None:
        self.inner.on_writable = callback

    def close(self) -> None:
        self.inner.close()

    def abort(self) -> None:
        self.inner.abort()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultyTransport {self.fault_name!r} over {self.inner!r} "
                f"dropped={self.frames_dropped} stalled={self._stalled}>")


class FaultySocket:
    """A socket wrapper that fails syscalls exactly where the plan says.

    Wraps a real socket object; ``sendmsg``/``recv`` consult the plan's
    one-shot syscall schedule (by cumulative byte offset, per direction)
    and the seeded partial-write rate.  Everything else passes through
    via ``__getattr__``, so a :class:`SocketTransport` can't tell the
    difference — which is the point: the pumps must mask EINTR, resume
    partial writes from the split point, and surface ECONNRESET as a
    clean ``on_close``.
    """

    def __init__(self, sock, plan: FaultPlan, name: str = "sock") -> None:
        self._sock = sock
        self._plan = plan
        self._rng = plan.rng_for(name)
        # private copy: one plan may arm many sockets independently
        self._send_faults = sorted(
            [(off, err) for side, off, err in plan.syscall_faults
             if side == "send"])
        self._recv_faults = sorted(
            [(off, err) for side, off, err in plan.syscall_faults
             if side == "recv"])
        self.sent_bytes = 0
        self.received_bytes = 0
        self.faults_fired = 0

    def _maybe_fail(self, faults: list, offset: int) -> None:
        if faults and faults[0][0] <= offset:
            _, err = faults.pop(0)
            self.faults_fired += 1
            # OSError's errno-based __new__ picks the right subclass:
            # EINTR -> InterruptedError, EAGAIN -> BlockingIOError,
            # ECONNRESET -> ConnectionResetError, ...
            raise OSError(err, os.strerror(err))

    def sendmsg(self, buffers):
        self._maybe_fail(self._send_faults, self.sent_bytes)
        buffers = list(buffers)
        if self._plan.partial and self._rng.random() < self._plan.partial:
            total = sum(len(b) for b in buffers)
            if total > 1:
                cap = self._rng.randrange(1, total)
                clipped: list = []
                for buf in buffers:
                    if cap <= 0:
                        break
                    clipped.append(buf[:cap])
                    cap -= len(buf)
                buffers = clipped
        sent = self._sock.sendmsg(buffers)
        self.sent_bytes += sent
        return sent

    def recv(self, nbytes, *args):
        self._maybe_fail(self._recv_faults, self.received_bytes)
        data = self._sock.recv(nbytes, *args)
        self.received_bytes += len(data)
        return data

    def __getattr__(self, attr):
        return getattr(self._sock, attr)


def inject_socket_faults(transport: SocketTransport, plan: FaultPlan,
                         name: Optional[str] = None) -> FaultySocket:
    """Arm a live :class:`SocketTransport` with the plan's syscall faults.

    Swaps the transport's socket for a :class:`FaultySocket` wrapper in
    place and returns the wrapper (for its fault counters).  Do this
    before traffic flows — offsets count from the moment of injection.
    """
    wrapped = FaultySocket(transport._sock, plan,
                           name if name is not None else transport.name)
    transport._sock = wrapped  # type: ignore[assignment]
    return wrapped


class FaultInjector:
    """Reactor-level faults: resets, link stalls, partitions, crashes.

    Stateless beyond an action log — each method takes its target
    explicitly, so one injector can torment a whole fleet.  Timed
    un-faults (heal after T, unstall after T) are one-shot events on the
    *target's own* scheduler: they replay deterministically in virtual
    time and never keep an idle reactor spinning.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(repr(("fault-injector", seed)))
        #: (action, target name) trail, in injection order.
        self.log: list[Tuple[str, str]] = []

    # -- transport-level ------------------------------------------------------

    def rst(self, transport) -> None:
        """Hard-reset a live transport (``abort``): in-flight data dies,
        both sides observe a connection reset / abrupt close."""
        self.log.append(("rst", getattr(transport, "name", "?")))
        transport.abort()

    def stall_link(self, faulty: FaultyTransport, seconds: float) -> None:
        """Freeze a wrapped link for ``seconds`` of its virtual time."""
        self.log.append(("stall", faulty.fault_name))
        faulty.stall(seconds)

    # -- member-level ---------------------------------------------------------

    def partition(self, reactor, member, seconds: Optional[float] = None,
                  scheduler: Optional[Scheduler] = None) -> None:
        """Cut a reactor member off from all I/O (see
        :meth:`~repro.net.reactor.Reactor.partition_member`); heal after
        ``seconds`` on the member's own clock if given."""
        self.log.append(("partition", member.name))
        reactor.partition_member(member)
        if seconds is not None:
            clock = scheduler if scheduler is not None else member.scheduler
            clock.call_later(seconds, self.heal, reactor, member)

    def heal(self, reactor, member) -> None:
        self.log.append(("heal", member.name))
        reactor.heal_member(member)

    def crash(self, scheduler: Scheduler, reason: str = "injected crash",
              exc_type: type = RuntimeError) -> None:
        """Detonate inside the target's own event loop: the next slice of
        its scheduler raises, which is what quarantine containment (and
        fleet supervision above it) are built to absorb."""
        self.log.append(("crash", reason))

        def _boom() -> None:
            raise exc_type(reason)

        scheduler.call_soon(_boom)

    # -- home-level conveniences ----------------------------------------------

    def partition_home(self, home, seconds: Optional[float] = None) -> None:
        """Partition a :class:`~repro.home.Home` (TCP mode) by member."""
        self.partition(home.reactor, home.reactor_member, seconds,
                       scheduler=home.scheduler)

    def crash_home(self, home, reason: str = "injected crash") -> None:
        self.crash(home.scheduler, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector seed={self.seed} actions={len(self.log)}>"

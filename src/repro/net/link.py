"""Link profiles: the timing model for simulated network links.

A :class:`LinkProfile` converts a payload size into a delivery delay:

    delay = propagation latency + jitter + payload_bits / bandwidth

Jitter is drawn from a seeded RNG owned by the pipe (not the profile) so two
pipes with the same profile do not share random state.  Loss is a Bernoulli
drop probability applied per message; reliable transports use loss 0.

The presets reflect the bearers available to the paper's devices circa 2002.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkProfile:
    """Timing/loss characteristics of one network link direction."""

    name: str
    latency_s: float
    bandwidth_bps: float
    jitter_s: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"negative latency: {self.latency_s}")
        if self.bandwidth_bps <= 0:
            raise ValueError(f"non-positive bandwidth: {self.bandwidth_bps}")
        if self.jitter_s < 0:
            raise ValueError(f"negative jitter: {self.jitter_s}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {self.loss}")

    def transmission_time(self, nbytes: int) -> float:
        """Seconds the link is busy serialising ``nbytes``."""
        return (nbytes * 8.0) / self.bandwidth_bps

    def sample_jitter(self, rng: random.Random) -> float:
        """One jitter sample in ``[0, jitter_s]``."""
        if self.jitter_s == 0.0:
            return 0.0
        return rng.uniform(0.0, self.jitter_s)

    def sample_loss(self, rng: random.Random) -> bool:
        """True when this message should be dropped."""
        if self.loss == 0.0:
            return False
        return rng.random() < self.loss


def compression_tier(profile: LinkProfile) -> int:
    """The compression effort a bearer is worth, from its byte cost.

    Tier 0: wire time is negligible next to encode time (Ethernet,
    loopback) — spend no extra CPU.  Tier 1: bytes have a visible cost
    (Bluetooth-class) — balanced compression.  Tier 2: every byte hurts
    (the paper's 9600 bps phone leg, IrDA) — maximum compression.

    Thresholds are seconds of line time per kilobyte: one KB at 50 ms is
    already user-visible latency on an interactive panel, at 5 ms it is
    borderline, below that it is free.
    """
    seconds_per_kb = profile.transmission_time(1024)
    if seconds_per_kb >= 0.05:
        return 2
    if seconds_per_kb >= 0.005:
        return 1
    return 0


#: In-process control path; effectively instantaneous.
LOOPBACK = LinkProfile("loopback", latency_s=5e-6, bandwidth_bps=8e9)

#: Wired home LAN backbone between appliances, proxy and servers.
ETHERNET_100 = LinkProfile("ethernet-100", latency_s=2e-4, bandwidth_bps=100e6)

#: 802.11b wireless, the PDA bearer of the era (~5 Mbps effective).
WIFI_11B = LinkProfile(
    "wifi-11b", latency_s=3e-3, bandwidth_bps=5e6, jitter_s=2e-3
)

#: Bluetooth 1.1, ~723 kbps asymmetric, used by wearables.
BLUETOOTH_1 = LinkProfile(
    "bluetooth-1.1", latency_s=15e-3, bandwidth_bps=723e3, jitter_s=5e-3
)

#: Japanese PDC packet data (the 2002 cellular phone bearer): 9600 bps.
CELLULAR_PDC = LinkProfile(
    "cellular-pdc", latency_s=0.35, bandwidth_bps=9600, jitter_s=0.08
)

#: IrDA remote-control style link.
INFRARED_IRDA = LinkProfile(
    "irda", latency_s=1e-3, bandwidth_bps=115200, jitter_s=1e-3
)

"""Bitmap font rendering.

:class:`Font` renders the 5x7 glyph table at an integer scale factor; the
toolkit uses scale 1 for captions and scale 2 for headings.  Glyph masks are
cached as numpy boolean arrays, so drawing text is a handful of vectorised
assignments per character.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.graphics import font5x7
from repro.graphics.bitmap import Bitmap, Color
from repro.graphics.region import Rect
from repro.util.errors import GraphicsError


class Font:
    """A scaled 5x7 bitmap font."""

    def __init__(self, scale: int = 1, tracking: int = 1) -> None:
        if scale < 1:
            raise GraphicsError(f"font scale must be >= 1: {scale}")
        if tracking < 0:
            raise GraphicsError(f"negative tracking: {tracking}")
        self.scale = scale
        #: Blank columns between glyphs, in unscaled pixels.
        self.tracking = tracking

    # -- metrics ------------------------------------------------------------

    @property
    def glyph_width(self) -> int:
        return font5x7.GLYPH_WIDTH * self.scale

    @property
    def glyph_height(self) -> int:
        return font5x7.GLYPH_HEIGHT * self.scale

    @property
    def advance(self) -> int:
        """Horizontal distance between glyph origins."""
        return (font5x7.GLYPH_WIDTH + self.tracking) * self.scale

    @property
    def line_height(self) -> int:
        return (font5x7.GLYPH_HEIGHT + 1) * self.scale

    def measure(self, text: str) -> tuple[int, int]:
        """(width, height) of ``text`` rendered on one line."""
        if not text:
            return (0, self.glyph_height)
        width = len(text) * self.advance - self.tracking * self.scale
        return (width, self.glyph_height)

    # -- rendering -----------------------------------------------------------

    def _mask(self, char: str) -> np.ndarray:
        return _glyph_mask(char, self.scale)

    def draw(self, bitmap: Bitmap, x: int, y: int, text: str,
             color: Color) -> Rect:
        """Draw ``text`` with its top-left corner at (x, y).

        Returns the dirty rect (clipped to the bitmap).  Characters outside
        the bitmap are clipped, not errors.
        """
        pen_x = x
        color_arr = np.asarray(color, dtype=np.uint8)
        bounds = bitmap.bounds
        for char in text:
            mask = self._mask(char)
            gh, gw = mask.shape
            target = Rect(pen_x, y, gw, gh).intersect(bounds)
            if not target.is_empty:
                mx = target.x - pen_x
                my = target.y - y
                sub = mask[my:my + target.h, mx:mx + target.w]
                view = bitmap.pixels[target.y:target.y2, target.x:target.x2]
                view[sub] = color_arr
            pen_x += self.advance
        w, h = self.measure(text)
        return Rect(x, y, w, h).intersect(bounds)

    def render(self, text: str, color: Color,
               background: Color = (0, 0, 0)) -> Bitmap:
        """Render ``text`` into a fresh minimal bitmap."""
        w, h = self.measure(text)
        bitmap = Bitmap(max(w, 1), h, fill=background)
        self.draw(bitmap, 0, 0, text, color)
        return bitmap


@lru_cache(maxsize=1024)
def _glyph_mask(char: str, scale: int) -> np.ndarray:
    """Boolean (H, W) mask of one glyph at the given scale."""
    columns = font5x7.GLYPHS.get(char, font5x7.REPLACEMENT)
    mask = np.zeros((font5x7.GLYPH_HEIGHT, font5x7.GLYPH_WIDTH), dtype=bool)
    for cx, bits in enumerate(columns):
        for cy in range(font5x7.GLYPH_HEIGHT):
            if bits & (1 << cy):
                mask[cy, cx] = True
    if scale > 1:
        mask = np.repeat(np.repeat(mask, scale, axis=0), scale, axis=1)
    return mask


@lru_cache(maxsize=8)
def default_font(scale: int = 1) -> Font:
    """Shared font instances (cached; fonts are immutable in practice)."""
    return Font(scale=scale)

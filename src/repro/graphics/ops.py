"""Image adaptation operators used by the output plug-ins (paper §2.2).

An output plug-in "contains a code to convert bitmap images received from a
UniInt server to images that can be displayed on the screen of the target
output device".  Concretely that is some composition of:

* resampling to the device resolution (:func:`scale_nearest`,
  :func:`scale_box`, :func:`scale_to_fit`),
* colour reduction (:func:`to_grayscale`, :func:`quantize_levels`),
* dithering for 1-bit / 2-bit panels (:func:`ordered_dither`,
  :func:`floyd_steinberg`),
* bit-packing into the device's native framebuffer layout
  (:func:`pack_mono`, :func:`pack_gray4`).

Everything is numpy-vectorised except Floyd–Steinberg, whose error feedback
is inherently serial per pixel (we vectorise per row where possible).
"""

from __future__ import annotations

import numpy as np

from repro.graphics.bitmap import Bitmap
from repro.util.errors import GraphicsError

#: ITU-R BT.601 luma weights.
_LUMA = np.asarray([0.299, 0.587, 0.114])

#: 4x4 Bayer threshold matrix, values 0..15.
BAYER_4X4 = np.asarray(
    [
        [0, 8, 2, 10],
        [12, 4, 14, 6],
        [3, 11, 1, 9],
        [15, 7, 13, 5],
    ],
    dtype=np.float64,
)


# -- resampling -------------------------------------------------------------


def scale_nearest(bitmap: Bitmap, width: int, height: int) -> Bitmap:
    """Nearest-neighbour resample to exactly ``width`` x ``height``."""
    if width <= 0 or height <= 0:
        raise GraphicsError(f"scale target must be positive: {width}x{height}")
    src = bitmap.pixels
    ys = (np.arange(height) * bitmap.height) // height
    xs = (np.arange(width) * bitmap.width) // width
    return Bitmap.from_array(src[ys[:, None], xs[None, :]])


def scale_box(bitmap: Bitmap, width: int, height: int) -> Bitmap:
    """Box-filter (area-average) resample; much better for downscaling text.

    Fully vectorised: an integral image plus fancy indexing computes every
    output pixel's source-box average in one shot (this sits on the per-
    frame output-plug-in path, so it must be fast).
    """
    if width <= 0 or height <= 0:
        raise GraphicsError(f"scale target must be positive: {width}x{height}")
    src = bitmap.pixels.astype(np.float64)
    sh, sw = src.shape[:2]
    y_edges = np.linspace(0, sh, height + 1)
    x_edges = np.linspace(0, sw, width + 1)
    # Integral image lets each output pixel average its source box in O(1).
    integral = np.zeros((sh + 1, sw + 1, 3), dtype=np.float64)
    integral[1:, 1:] = src.cumsum(axis=0).cumsum(axis=1)
    y0s = np.floor(y_edges[:-1]).astype(int)
    y1s = np.maximum(np.ceil(y_edges[1:]).astype(int), y0s + 1)
    x0s = np.floor(x_edges[:-1]).astype(int)
    x1s = np.maximum(np.ceil(x_edges[1:]).astype(int), x0s + 1)
    sums = (integral[np.ix_(y1s, x1s)] - integral[np.ix_(y0s, x1s)]
            - integral[np.ix_(y1s, x0s)] + integral[np.ix_(y0s, x0s)])
    areas = ((y1s - y0s)[:, None] * (x1s - x0s)[None, :]).astype(np.float64)
    out = sums / areas[..., None]
    return Bitmap.from_array(np.clip(np.rint(out), 0, 255).astype(np.uint8))


def scale_to_fit(bitmap: Bitmap, max_width: int, max_height: int,
                 smooth: bool = True) -> Bitmap:
    """Resample preserving aspect ratio to fit in a bounding box."""
    if max_width <= 0 or max_height <= 0:
        raise GraphicsError("fit box must be positive")
    ratio = min(max_width / bitmap.width, max_height / bitmap.height)
    width = max(1, int(bitmap.width * ratio))
    height = max(1, int(bitmap.height * ratio))
    if ratio == 1.0:
        return bitmap.copy()
    if smooth and ratio < 1.0:
        return scale_box(bitmap, width, height)
    return scale_nearest(bitmap, width, height)


# -- colour reduction -----------------------------------------------------------


def to_grayscale(bitmap: Bitmap) -> np.ndarray:
    """(H, W) float64 luma in 0..255."""
    return bitmap.pixels.astype(np.float64) @ _LUMA


def gray_bitmap(gray: np.ndarray) -> Bitmap:
    """Lift an (H, W) luma array back into an RGB bitmap (for previews)."""
    g8 = np.clip(np.rint(gray), 0, 255).astype(np.uint8)
    return Bitmap.from_array(np.repeat(g8[..., None], 3, axis=2))


def quantize_levels(gray: np.ndarray, levels: int) -> np.ndarray:
    """Quantise luma to ``levels`` evenly spaced values (no dithering)."""
    if levels < 2:
        raise GraphicsError(f"need at least 2 levels: {levels}")
    steps = levels - 1
    return np.rint(gray / 255.0 * steps) * (255.0 / steps)


# -- dithering -----------------------------------------------------------------


def ordered_dither(gray: np.ndarray, levels: int = 2) -> np.ndarray:
    """Bayer 4x4 ordered dither to ``levels`` grey levels.

    Fast and stable frame-to-frame (no crawling error patterns), which is
    why the PDA output plug-in prefers it for animation.
    """
    if levels < 2:
        raise GraphicsError(f"need at least 2 levels: {levels}")
    h, w = gray.shape
    threshold = (np.tile(BAYER_4X4, (h // 4 + 1, w // 4 + 1))[:h, :w] + 0.5) / 16.0
    steps = levels - 1
    scaled = gray / 255.0 * steps
    dithered = np.floor(scaled + threshold)
    return np.clip(dithered, 0, steps) * (255.0 / steps)


def floyd_steinberg(gray: np.ndarray, levels: int = 2) -> np.ndarray:
    """Floyd–Steinberg error-diffusion dither to ``levels`` grey levels.

    Higher quality on static panels; the phone output plug-in uses it for
    its 1-bit screen.  Error feedback is serial by nature, so the inner
    loop runs on plain Python floats (an order of magnitude faster than
    per-element numpy indexing).
    """
    if levels < 2:
        raise GraphicsError(f"need at least 2 levels: {levels}")
    steps = levels - 1
    scale = 255.0 / steps
    h, w = gray.shape
    work = gray.astype(np.float64).tolist()
    out = [[0.0] * w for _ in range(h)]
    for y in range(h):
        row = work[y]
        out_row = out[y]
        below = work[y + 1] if y + 1 < h else None
        for x in range(w):
            old = row[x]
            quantum = round(old / scale)
            if quantum < 0:
                quantum = 0
            elif quantum > steps:
                quantum = steps
            new = quantum * scale
            out_row[x] = new
            err = old - new
            if x + 1 < w:
                row[x + 1] += err * 0.4375        # 7/16
            if below is not None:
                if x > 0:
                    below[x - 1] += err * 0.1875  # 3/16
                below[x] += err * 0.3125          # 5/16
                if x + 1 < w:
                    below[x + 1] += err * 0.0625  # 1/16
    return np.asarray(out)


# -- device bit-packing ------------------------------------------------------------


def pack_mono(gray: np.ndarray, threshold: float = 127.5) -> bytes:
    """Pack luma to 1 bit/pixel, MSB first, rows padded to whole bytes."""
    bits = (gray > threshold).astype(np.uint8)
    return np.packbits(bits, axis=1).tobytes()


def unpack_mono(data: bytes, width: int, height: int) -> np.ndarray:
    """Inverse of :func:`pack_mono`; returns luma 0/255."""
    row_bytes = (width + 7) // 8
    if len(data) != row_bytes * height:
        raise GraphicsError(
            f"mono buffer is {len(data)} bytes, expected {row_bytes * height}"
        )
    rows = np.frombuffer(data, dtype=np.uint8).reshape(height, row_bytes)
    bits = np.unpackbits(rows, axis=1)[:, :width]
    return bits.astype(np.float64) * 255.0


def pack_gray4(gray: np.ndarray) -> bytes:
    """Pack luma to 4 grey levels, 2 bits/pixel, rows padded to bytes."""
    levels = np.clip(np.rint(gray / 85.0), 0, 3).astype(np.uint8)
    h, w = levels.shape
    padded_w = (w + 3) // 4 * 4
    padded = np.zeros((h, padded_w), dtype=np.uint8)
    padded[:, :w] = levels
    packed = (padded[:, 0::4] << 6 | padded[:, 1::4] << 4
              | padded[:, 2::4] << 2 | padded[:, 3::4])
    return packed.tobytes()


def unpack_gray4(data: bytes, width: int, height: int) -> np.ndarray:
    """Inverse of :func:`pack_gray4`; returns luma at the 4 levels."""
    row_bytes = (width + 3) // 4
    if len(data) != row_bytes * height:
        raise GraphicsError(
            f"gray4 buffer is {len(data)} bytes, expected {row_bytes * height}"
        )
    rows = np.frombuffer(data, dtype=np.uint8).reshape(height, row_bytes)
    levels = np.empty((height, row_bytes * 4), dtype=np.uint8)
    levels[:, 0::4] = rows >> 6
    levels[:, 1::4] = (rows >> 4) & 3
    levels[:, 2::4] = (rows >> 2) & 3
    levels[:, 3::4] = rows & 3
    return levels[:, :width].astype(np.float64) * 85.0


def mean_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Mean absolute luma error between two images (dither quality metric)."""
    if a.shape != b.shape:
        raise GraphicsError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).mean())

"""The canonical in-memory image: an RGB888 numpy-backed bitmap.

Everything inside the system (toolkit painting, window composition, UniInt
server snapshots, output plug-in inputs) is a :class:`Bitmap`; wire formats
and device formats only appear at the edges.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphics.region import Rect
from repro.util.errors import GraphicsError

Color = tuple[int, int, int]

BLACK: Color = (0, 0, 0)
WHITE: Color = (255, 255, 255)


def _validate_color(color: Color) -> np.ndarray:
    if len(color) != 3:
        raise GraphicsError(f"colour must be an RGB triple: {color!r}")
    arr = np.asarray(color, dtype=np.int64)
    if (arr < 0).any() or (arr > 255).any():
        raise GraphicsError(f"colour components out of range: {color!r}")
    return arr.astype(np.uint8)


class Bitmap:
    """An (H, W, 3) uint8 RGB image with rect-oriented operations."""

    __slots__ = ("pixels",)

    def __init__(self, width: int, height: int,
                 fill: Color = BLACK) -> None:
        if width <= 0 or height <= 0:
            raise GraphicsError(f"bitmap size must be positive: "
                                f"{width}x{height}")
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.pixels[:] = _validate_color(fill)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray) -> "Bitmap":
        """Wrap an (H, W, 3) uint8 array (copied exactly once)."""
        if array.ndim != 3 or array.shape[2] != 3:
            raise GraphicsError(f"expected (H, W, 3) array, got {array.shape}")
        bitmap = cls.__new__(cls)
        pixels = np.ascontiguousarray(array, dtype=np.uint8)
        if isinstance(array, np.ndarray) and np.shares_memory(pixels, array):
            # ascontiguousarray passed the input's storage through (it was
            # already contiguous uint8, possibly as a view or subclass);
            # copy to keep the bitmap private.  Any other input was
            # already copied by the conversion.
            pixels = pixels.copy()
        bitmap.pixels = pixels
        return bitmap

    def copy(self) -> "Bitmap":
        return Bitmap.from_array(self.pixels)

    # -- geometry ----------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def size(self) -> tuple[int, int]:
        return (self.width, self.height)

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    # -- pixel access ---------------------------------------------------------

    def get_pixel(self, x: int, y: int) -> Color:
        if not self.bounds.contains_point(x, y):
            raise GraphicsError(f"pixel ({x}, {y}) outside {self.size}")
        r, g, b = self.pixels[y, x]
        return (int(r), int(g), int(b))

    def set_pixel(self, x: int, y: int, color: Color) -> None:
        if not self.bounds.contains_point(x, y):
            raise GraphicsError(f"pixel ({x}, {y}) outside {self.size}")
        self.pixels[y, x] = _validate_color(color)

    # -- rect operations ----------------------------------------------------------

    def fill(self, color: Color) -> None:
        self.pixels[:] = _validate_color(color)

    def fill_rect(self, rect: Rect, color: Color) -> None:
        clipped = rect.intersect(self.bounds)
        if clipped.is_empty:
            return
        self.pixels[clipped.y:clipped.y2, clipped.x:clipped.x2] = (
            _validate_color(color)
        )

    def crop(self, rect: Rect) -> "Bitmap":
        """A copy of the given sub-rectangle (clipped to bounds)."""
        clipped = rect.intersect(self.bounds)
        if clipped.is_empty:
            raise GraphicsError(f"crop rect {rect} outside bitmap {self.size}")
        return Bitmap.from_array(
            self.pixels[clipped.y:clipped.y2, clipped.x:clipped.x2]
        )

    def view(self, rect: Rect) -> np.ndarray:
        """A zero-copy (h, w, 3) subarray of ``rect`` (clipped to bounds).

        The returned array shares storage with the bitmap: writes through
        either are visible in both, and it is only valid until the bitmap
        is replaced (resize).  The encode hot path packs damaged rects
        through views to skip the :meth:`crop` copy.
        """
        clipped = rect.intersect(self.bounds)
        if clipped.is_empty:
            raise GraphicsError(f"view rect {rect} outside bitmap {self.size}")
        return self.pixels[clipped.y:clipped.y2, clipped.x:clipped.x2]

    def blit(self, source: "Bitmap", x: int, y: int) -> Rect:
        """Copy ``source`` onto this bitmap at (x, y); returns the dirty rect.

        The source is clipped against the destination bounds, so partially
        (or fully) off-screen blits are safe.
        """
        target = Rect(x, y, source.width, source.height)
        clipped = target.intersect(self.bounds)
        if clipped.is_empty:
            return clipped
        sx = clipped.x - x
        sy = clipped.y - y
        self.pixels[clipped.y:clipped.y2, clipped.x:clipped.x2] = (
            source.pixels[sy:sy + clipped.h, sx:sx + clipped.w]
        )
        return clipped

    def copy_rect(self, src: Rect, dst_x: int, dst_y: int) -> Rect:
        """Move a rectangle within this bitmap (the COPYRECT primitive)."""
        clipped_src = src.intersect(self.bounds)
        if clipped_src.is_empty:
            return clipped_src
        data = self.pixels[clipped_src.y:clipped_src.y2,
                           clipped_src.x:clipped_src.x2].copy()
        # clipping the source must shift the destination by the same amount,
        # or the surviving pixels land at the wrong offset
        dst = Rect(dst_x + (clipped_src.x - src.x),
                   dst_y + (clipped_src.y - src.y),
                   clipped_src.w, clipped_src.h)
        clipped_dst = dst.intersect(self.bounds)
        if clipped_dst.is_empty:
            return clipped_dst
        ox = clipped_dst.x - dst.x
        oy = clipped_dst.y - dst.y
        self.pixels[clipped_dst.y:clipped_dst.y2,
                    clipped_dst.x:clipped_dst.x2] = (
            data[oy:oy + clipped_dst.h, ox:ox + clipped_dst.w]
        )
        return clipped_dst

    # -- comparison --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return (self.size == other.size
                and bool(np.array_equal(self.pixels, other.pixels)))

    def __hash__(self) -> int:  # bitmaps are mutable; identity hash
        return id(self)

    def diff_rect(self, other: "Bitmap") -> Rect:
        """Bounding box of pixels that differ from ``other`` (empty if equal)."""
        if self.size != other.size:
            raise GraphicsError(
                f"cannot diff {self.size} against {other.size}"
            )
        changed = (self.pixels != other.pixels).any(axis=2)
        ys, xs = np.nonzero(changed)
        if len(xs) == 0:
            return Rect(0, 0, 0, 0)
        x1, x2 = int(xs.min()), int(xs.max()) + 1
        y1, y2 = int(ys.min()), int(ys.max()) + 1
        return Rect(x1, y1, x2 - x1, y2 - y1)

    # -- serialisation ------------------------------------------------------------

    def to_ppm(self) -> bytes:
        """Binary PPM (P6), for golden files and example screenshots."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        return header + self.pixels.tobytes()

    @classmethod
    def from_ppm(cls, data: bytes) -> "Bitmap":
        if not data.startswith(b"P6"):
            raise GraphicsError("not a binary PPM (P6) file")
        fields: list[bytes] = []
        pos = 2
        while len(fields) < 3:
            while pos < len(data) and data[pos:pos + 1].isspace():
                pos += 1
            if data[pos:pos + 1] == b"#":  # comment line
                pos = data.index(b"\n", pos) + 1
                continue
            start = pos
            while pos < len(data) and not data[pos:pos + 1].isspace():
                pos += 1
            fields.append(data[start:pos])
        width, height, maxval = (int(f) for f in fields)
        if maxval != 255:
            raise GraphicsError(f"unsupported PPM maxval {maxval}")
        pos += 1  # single whitespace after maxval
        expected = width * height * 3
        raster = data[pos:pos + expected]
        if len(raster) != expected:
            raise GraphicsError("PPM raster truncated")
        array = np.frombuffer(raster, dtype=np.uint8).reshape(
            height, width, 3)
        return cls.from_array(array)

    def save_ppm(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_ppm())

    @classmethod
    def load_ppm(cls, path: str) -> "Bitmap":
        with open(path, "rb") as handle:
            return cls.from_ppm(handle.read())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bitmap {self.width}x{self.height}>"


def average_color(bitmaps: Iterable[Bitmap]) -> Color:
    """Mean colour over one or more bitmaps (diagnostics, tests)."""
    stacks = [bitmap.pixels.reshape(-1, 3) for bitmap in bitmaps]
    if not stacks:
        raise GraphicsError("average_color of no bitmaps")
    merged = np.concatenate(stacks, axis=0)
    mean = merged.mean(axis=0)
    return (int(mean[0]), int(mean[1]), int(mean[2]))

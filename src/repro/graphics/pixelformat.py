"""Wire pixel formats, RFB-style.

The universal interaction protocol negotiates a *true-colour* pixel format
per client (the paper's output devices range from 32-bit TV panels to 8-bit
PDA screens).  A :class:`PixelFormat` describes how an RGB triple packs into
a little/big-endian integer of ``bits_per_pixel`` bits; :meth:`pack` and
:meth:`unpack` convert whole numpy image arrays at once.

Pack/unpack are exact inverses up to channel quantisation, which the
property tests pin down: ``unpack(pack(x)) == quantise(x)``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.util.errors import GraphicsError

_WIRE = struct.Struct(">BBBBHHHBBB3x")


@dataclass(frozen=True)
class PixelFormat:
    """An RFB-style true-colour pixel format."""

    bits_per_pixel: int
    depth: int
    big_endian: bool
    red_max: int
    green_max: int
    blue_max: int
    red_shift: int
    green_shift: int
    blue_shift: int

    def __post_init__(self) -> None:
        if self.bits_per_pixel not in (8, 16, 32):
            raise GraphicsError(
                f"bits_per_pixel must be 8, 16 or 32: {self.bits_per_pixel}"
            )
        for name in ("red_max", "green_max", "blue_max"):
            value = getattr(self, name)
            if value < 1 or (value & (value + 1)) != 0:
                raise GraphicsError(f"{name} must be 2^n - 1, got {value}")
        if self.depth > self.bits_per_pixel:
            raise GraphicsError("depth exceeds bits_per_pixel")

    # -- numpy dtype ----------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        base = {8: np.uint8, 16: np.uint16, 32: np.uint32}[self.bits_per_pixel]
        return np.dtype(base).newbyteorder(">" if self.big_endian else "<")

    @property
    def bytes_per_pixel(self) -> int:
        return self.bits_per_pixel // 8

    # -- conversion -------------------------------------------------------------

    def pack_array(self, rgb: np.ndarray,
                   out: np.ndarray | None = None) -> np.ndarray:
        """Pack an (H, W, 3) uint8 RGB array into an (H, W) wire array.

        ``rgb`` may be any view, contiguous or not (framebuffer sub-rects
        pack without an intermediate crop).  Passing ``out`` — an (H, W)
        array of this format's dtype — reuses that buffer for the result
        instead of allocating a fresh one (the server's per-rect pack
        scratch on the hot path).
        """
        if rgb.ndim != 3 or rgb.shape[2] != 3 or rgb.dtype != np.uint8:
            raise GraphicsError(f"expected (H, W, 3) uint8, got {rgb.shape} "
                                f"{rgb.dtype}")
        wide = rgb.astype(np.uint32)
        r = (wide[..., 0] * self.red_max + 127) // 255
        g = (wide[..., 1] * self.green_max + 127) // 255
        b = (wide[..., 2] * self.blue_max + 127) // 255
        packed = ((r << self.red_shift) | (g << self.green_shift)
                  | (b << self.blue_shift))
        if out is not None:
            if out.shape != packed.shape or out.dtype != self.dtype:
                raise GraphicsError(
                    f"pack_array out buffer is {out.shape} {out.dtype}, "
                    f"expected {packed.shape} {self.dtype}")
            np.copyto(out, packed, casting="unsafe")
            return out
        return packed.astype(self.dtype)

    def pack(self, rgb: np.ndarray) -> bytes:
        """Pack an (H, W, 3) uint8 RGB array into wire bytes, row-major."""
        return self.pack_array(rgb).tobytes()

    def unpack(self, data: bytes, width: int, height: int) -> np.ndarray:
        """Unpack wire bytes into an (H, W, 3) uint8 RGB array."""
        expected = width * height * self.bytes_per_pixel
        if len(data) != expected:
            raise GraphicsError(
                f"pixel data is {len(data)} bytes, expected {expected}"
            )
        flat = np.frombuffer(data, dtype=self.dtype)
        packed = flat.reshape(height, width).astype(np.uint32)
        r = (packed >> self.red_shift) & self.red_max
        g = (packed >> self.green_shift) & self.green_max
        b = (packed >> self.blue_shift) & self.blue_max
        rgb = np.empty((height, width, 3), dtype=np.uint8)
        rgb[..., 0] = (r * 255 + self.red_max // 2) // self.red_max
        rgb[..., 1] = (g * 255 + self.green_max // 2) // self.green_max
        rgb[..., 2] = (b * 255 + self.blue_max // 2) // self.blue_max
        return rgb

    def quantise(self, rgb: np.ndarray) -> np.ndarray:
        """The colour loss a round-trip through this format causes."""
        return self.unpack(self.pack(rgb), rgb.shape[1], rgb.shape[0])

    # -- wire form ---------------------------------------------------------------

    def encode(self) -> bytes:
        """16-byte wire form used in the ServerInit / SetPixelFormat messages."""
        return _WIRE.pack(
            self.bits_per_pixel, self.depth, int(self.big_endian), 1,
            self.red_max, self.green_max, self.blue_max,
            self.red_shift, self.green_shift, self.blue_shift,
        )

    @classmethod
    def decode(cls, data: bytes) -> "PixelFormat":
        if len(data) != _WIRE.size:
            raise GraphicsError(f"pixel format blob must be {_WIRE.size} "
                                f"bytes, got {len(data)}")
        (bpp, depth, big_endian, true_colour, rmax, gmax, bmax,
         rshift, gshift, bshift) = _WIRE.unpack(data)
        if not true_colour:
            raise GraphicsError("colour-map pixel formats are not supported")
        return cls(bpp, depth, bool(big_endian), rmax, gmax, bmax,
                   rshift, gshift, bshift)


#: Canonical 32bpp 8:8:8 true colour — the server-side native format.
RGB888 = PixelFormat(32, 24, False, 255, 255, 255, 16, 8, 0)

#: 16bpp 5:6:5 — PDA-class colour screens.
RGB565 = PixelFormat(16, 16, False, 31, 63, 31, 11, 5, 0)

#: 8bpp 3:3:2 — lowest-end colour wire format (phones, wearables).
RGB332 = PixelFormat(8, 8, False, 7, 7, 3, 5, 2, 0)

#: Formats by name, for config files and tests.
PIXEL_FORMATS = {"rgb888": RGB888, "rgb565": RGB565, "rgb332": RGB332}

"""Rectangle and region algebra.

:class:`Rect` is the universal geometry currency of the reproduction: the
toolkit damages rects, the window system composites rects, the UniInt server
encodes rects.  :class:`Region` maintains a set of *disjoint* rectangles
under union, which is exactly what incremental framebuffer updates need —
overlapping damage must not be encoded twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Rect:
    """Axis-aligned rectangle; ``w``/``h`` may be zero (empty)."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"negative rect size: {self.w}x{self.h}")

    # -- basic properties ---------------------------------------------------

    @property
    def x2(self) -> int:
        """One past the right edge."""
        return self.x + self.w

    @property
    def y2(self) -> int:
        """One past the bottom edge."""
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    @property
    def is_empty(self) -> bool:
        return self.w == 0 or self.h == 0

    @property
    def center(self) -> tuple[int, int]:
        return (self.x + self.w // 2, self.y + self.h // 2)

    # -- queries --------------------------------------------------------------

    def contains_point(self, px: int, py: int) -> bool:
        return self.x <= px < self.x2 and self.y <= py < self.y2

    def contains_rect(self, other: "Rect") -> bool:
        if other.is_empty:
            return True
        return (self.x <= other.x and self.y <= other.y
                and other.x2 <= self.x2 and other.y2 <= self.y2)

    def intersects(self, other: "Rect") -> bool:
        return not self.intersect(other).is_empty

    # -- combination ----------------------------------------------------------

    def intersect(self, other: "Rect") -> "Rect":
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return Rect(0, 0, 0, 0)
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rect covering both (bounding box, not exact union)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        x1 = min(self.x, other.x)
        y1 = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def subtract(self, other: "Rect") -> list["Rect"]:
        """This rect minus ``other``, as up to four disjoint rects."""
        clip = self.intersect(other)
        if clip.is_empty:
            return [] if self.is_empty else [self]
        pieces = []
        if clip.y > self.y:  # band above
            pieces.append(Rect(self.x, self.y, self.w, clip.y - self.y))
        if clip.y2 < self.y2:  # band below
            pieces.append(Rect(self.x, clip.y2, self.w, self.y2 - clip.y2))
        if clip.x > self.x:  # left of clip, same vertical band as clip
            pieces.append(Rect(self.x, clip.y, clip.x - self.x, clip.h))
        if clip.x2 < self.x2:  # right of clip
            pieces.append(Rect(clip.x2, clip.y, self.x2 - clip.x2, clip.h))
        return pieces

    # -- transforms -------------------------------------------------------------

    def translate(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def inset(self, margin: int) -> "Rect":
        """Shrink by ``margin`` on every side (clamped to empty)."""
        w = max(0, self.w - 2 * margin)
        h = max(0, self.h - 2 * margin)
        return Rect(self.x + margin, self.y + margin, w, h)

    def clamp_inside(self, bounds: "Rect") -> "Rect":
        """Clip this rect to ``bounds``."""
        return self.intersect(bounds)

    def split_tiles(self, tile_w: int, tile_h: int) -> Iterator["Rect"]:
        """Yield the tile grid covering this rect, row-major.

        Edge tiles are trimmed; used by the HEXTILE encoder.
        """
        if tile_w <= 0 or tile_h <= 0:
            raise ValueError("tile size must be positive")
        for ty in range(self.y, self.y2, tile_h):
            for tx in range(self.x, self.x2, tile_w):
                yield Rect(tx, ty, min(tile_w, self.x2 - tx),
                           min(tile_h, self.y2 - ty))


def _coalesce_exact(rects: list[Rect]) -> list[Rect]:
    """Re-cover a disjoint rect set with fewer rects, exactly.

    Classic band decomposition: cut the plane into horizontal bands at every
    rect edge, merge touching x-spans within each band, then stack
    vertically adjacent bands whose spans line up.  The output covers
    exactly the same pixels as the input and stays disjoint.
    """
    if len(rects) <= 1:
        return list(rects)
    edges = sorted({r.y for r in rects} | {r.y2 for r in rects})
    by_y = sorted(rects, key=lambda r: (r.y, r.x))
    # open[(x, w)] -> y the run started at, for spans still growing downward
    open_spans: dict[tuple[int, int], int] = {}
    out: list[Rect] = []
    for y1, y2 in zip(edges, edges[1:]):
        spans: list[tuple[int, int]] = []
        for rect in by_y:
            if rect.y < y2 and rect.y2 > y1:
                spans.append((rect.x, rect.x2))
        if not spans:
            current: dict[tuple[int, int], int] = {}
        else:
            spans.sort()
            merged = [spans[0]]
            for x1, x2 in spans[1:]:
                if x1 <= merged[-1][1]:  # touching or overlapping
                    merged[-1] = (merged[-1][0], max(merged[-1][1], x2))
                else:
                    merged.append((x1, x2))
            current = {(x1, x2 - x1): y1 for x1, x2 in merged}
        for key, start in list(open_spans.items()):
            if key not in current:
                out.append(Rect(key[0], start, key[1], y1 - start))
                del open_spans[key]
        for key in current:
            open_spans.setdefault(key, y1)
    for (x, w), start in open_spans.items():
        out.append(Rect(x, start, w, edges[-1] - start))
    out.sort()
    return out


def _merge_to_cap(rects: list[Rect], cap: int) -> list[Rect]:
    """Merge disjoint rects down to at most ``cap`` bounding boxes.

    Greedy: repeatedly fuse the pair whose joint bounding box wastes the
    least area, then absorb anything the new box now overlaps.  The result
    may cover *more* pixels than the input (never fewer) but stays disjoint.
    """
    out = list(rects)
    while len(out) > cap:
        best_waste = None
        best = (0, 1)
        for i, a in enumerate(out):
            for j in range(i + 1, len(out)):
                box = a.union_bounds(out[j])
                waste = box.area - a.area - out[j].area
                if best_waste is None or waste < best_waste:
                    best_waste = waste
                    best = (i, j)
        i, j = best
        box = out[i].union_bounds(out[j])
        rest = [r for k, r in enumerate(out) if k not in (i, j)]
        # absorbing may overlap further rects; keep fusing until disjoint
        changed = True
        while changed:
            changed = False
            for k, r in enumerate(rest):
                if box.intersects(r):
                    box = box.union_bounds(r)
                    del rest[k]
                    changed = True
                    break
        out = rest + [box]
    out.sort()
    return out


class Region:
    """A set of points kept as disjoint rectangles, closed under union.

    Invariant (property-tested): the stored rectangles never overlap, and
    membership matches the union of everything ever added.
    """

    def __init__(self, rects: Iterable[Rect] = ()) -> None:
        self._rects: list[Rect] = []
        for rect in rects:
            self.add(rect)

    @classmethod
    def from_disjoint(cls, rects: Iterable[Rect]) -> "Region":
        """Wrap rects that are already known to be disjoint (no re-splitting).

        Used by the damage pipeline to hand coalesced rect lists around
        without paying :meth:`add`'s subtraction cost again.  Callers are
        trusted; feeding overlapping rects breaks the region invariant.
        """
        region = cls()
        region._rects = [r for r in rects if not r.is_empty]
        return region

    # -- mutation ---------------------------------------------------------------

    def add(self, rect: Rect) -> None:
        """Union ``rect`` into the region, keeping pieces disjoint."""
        if rect.is_empty:
            return
        new_pieces = [rect]
        for existing in self._rects:
            next_pieces: list[Rect] = []
            for piece in new_pieces:
                next_pieces.extend(piece.subtract(existing))
            new_pieces = next_pieces
            if not new_pieces:
                return
        self._rects.extend(new_pieces)

    def subtract(self, rect: Rect) -> None:
        """Remove ``rect``'s area from the region."""
        if rect.is_empty:
            return
        result: list[Rect] = []
        for existing in self._rects:
            result.extend(existing.subtract(rect))
        self._rects = result

    def clear(self) -> None:
        self._rects = []

    # -- queries ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._rects

    @property
    def area(self) -> int:
        return sum(rect.area for rect in self._rects)

    def rects(self) -> list[Rect]:
        """The disjoint rectangles, in a deterministic order."""
        return sorted(self._rects)

    def coalesced(self, cap: int | None = None) -> list[Rect]:
        """A minimal-fragmentation disjoint cover of this region.

        Adjacent and overlapping fragments produced by :meth:`add`'s
        subtraction splitting are fused back into larger rects; the result
        covers *exactly* the same pixels.  With ``cap`` set, the list is
        further reduced to at most ``cap`` rects by bounding-box merging,
        which may over-cover (safe for damage: extra pixels are re-sent,
        never lost) but never exceeds the cap.
        """
        if cap is not None and cap < 1:
            raise ValueError(f"coalesce cap must be >= 1, got {cap}")
        out = _coalesce_exact(self._rects)
        if len(out) >= len(self._rects):
            # band decomposition can lose to the stored cover on staggered
            # layouts; never return a worse cover than we already hold
            out = sorted(self._rects)
        if cap is not None and len(out) > cap:
            out = _merge_to_cap(out, cap)
        return out

    def coalesce(self, cap: int | None = None) -> None:
        """Re-cover this region in place with :meth:`coalesced` rects."""
        self._rects = self.coalesced(cap)

    def bounds(self) -> Rect:
        """Bounding box of the whole region (empty rect if empty)."""
        box = Rect(0, 0, 0, 0)
        for rect in self._rects:
            box = box.union_bounds(rect)
        return box

    def contains_point(self, px: int, py: int) -> bool:
        return any(rect.contains_point(px, py) for rect in self._rects)

    def intersects(self, rect: Rect) -> bool:
        return any(rect.intersects(existing) for existing in self._rects)

    def copy(self) -> "Region":
        region = Region()
        region._rects = list(self._rects)
        return region

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.rects())

    def __len__(self) -> int:
        return len(self._rects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.rects()!r})"

"""Raster graphics substrate.

The universal interaction protocol ships *bitmap images* as its output
events, so the reproduction needs a real raster stack: a canonical RGB
:class:`Bitmap`, wire pixel formats (:class:`PixelFormat`), rectangle/region
algebra for damage tracking, drawing primitives and a bitmap font for the
toolkit, and the resampling/quantisation/dithering operators the output
plug-ins use to adapt images to weak displays.
"""

from repro.graphics.bitmap import Bitmap
from repro.graphics.differ import TileDiffer
from repro.graphics.pixelformat import (
    PIXEL_FORMATS,
    RGB332,
    RGB565,
    RGB888,
    PixelFormat,
)
from repro.graphics.region import Rect, Region
from repro.graphics import draw, ops
from repro.graphics.font import Font, default_font

__all__ = [
    "Bitmap",
    "Font",
    "PIXEL_FORMATS",
    "PixelFormat",
    "RGB332",
    "RGB565",
    "RGB888",
    "Rect",
    "Region",
    "TileDiffer",
    "default_font",
    "draw",
    "ops",
]

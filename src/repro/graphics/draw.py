"""Drawing primitives over :class:`~repro.graphics.bitmap.Bitmap`.

These are the operations the widget toolkit paints with: lines, rectangle
outlines, filled/raised/sunken boxes (the classic 2002-era bevel look) and
circles.  All primitives clip against the bitmap bounds.
"""

from __future__ import annotations

from repro.graphics.bitmap import Bitmap, Color
from repro.graphics.region import Rect


def hline(bitmap: Bitmap, x: int, y: int, length: int, color: Color) -> None:
    """Horizontal line from (x, y), ``length`` pixels to the right."""
    bitmap.fill_rect(Rect(x, y, max(length, 0), 1), color)


def vline(bitmap: Bitmap, x: int, y: int, length: int, color: Color) -> None:
    """Vertical line from (x, y), ``length`` pixels downward."""
    bitmap.fill_rect(Rect(x, y, 1, max(length, 0)), color)


def line(bitmap: Bitmap, x0: int, y0: int, x1: int, y1: int,
         color: Color) -> None:
    """Bresenham line between two points (inclusive)."""
    dx = abs(x1 - x0)
    dy = -abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx + dy
    bounds = bitmap.bounds
    x, y = x0, y0
    while True:
        if bounds.contains_point(x, y):
            bitmap.pixels[y, x] = color
        if x == x1 and y == y1:
            return
        e2 = 2 * err
        if e2 >= dy:
            err += dy
            x += sx
        if e2 <= dx:
            err += dx
            y += sy


def rect_outline(bitmap: Bitmap, rect: Rect, color: Color,
                 thickness: int = 1) -> None:
    """Rectangle border drawn inside ``rect``."""
    for i in range(min(thickness, (min(rect.w, rect.h) + 1) // 2)):
        inner = rect.inset(i)
        hline(bitmap, inner.x, inner.y, inner.w, color)
        hline(bitmap, inner.x, inner.y2 - 1, inner.w, color)
        vline(bitmap, inner.x, inner.y, inner.h, color)
        vline(bitmap, inner.x2 - 1, inner.y, inner.h, color)


def bevel_box(bitmap: Bitmap, rect: Rect, face: Color, light: Color,
              shadow: Color, sunken: bool = False) -> None:
    """Filled box with a one-pixel 3D bevel (raised or sunken)."""
    bitmap.fill_rect(rect, face)
    if rect.w < 2 or rect.h < 2:
        return
    top_left = shadow if sunken else light
    bottom_right = light if sunken else shadow
    hline(bitmap, rect.x, rect.y, rect.w, top_left)
    vline(bitmap, rect.x, rect.y, rect.h, top_left)
    hline(bitmap, rect.x, rect.y2 - 1, rect.w, bottom_right)
    vline(bitmap, rect.x2 - 1, rect.y, rect.h, bottom_right)


def circle_outline(bitmap: Bitmap, cx: int, cy: int, radius: int,
                   color: Color) -> None:
    """Midpoint circle outline."""
    if radius < 0:
        return
    bounds = bitmap.bounds
    x, y = radius, 0
    err = 1 - radius

    def plot(px: int, py: int) -> None:
        if bounds.contains_point(px, py):
            bitmap.pixels[py, px] = color

    while x >= y:
        for sx, sy in ((x, y), (y, x), (-y, x), (-x, y),
                       (-x, -y), (-y, -x), (y, -x), (x, -y)):
            plot(cx + sx, cy + sy)
        y += 1
        if err < 0:
            err += 2 * y + 1
        else:
            x -= 1
            err += 2 * (y - x) + 1


def circle_fill(bitmap: Bitmap, cx: int, cy: int, radius: int,
                color: Color) -> None:
    """Filled circle via per-scanline spans."""
    if radius < 0:
        return
    for dy in range(-radius, radius + 1):
        half = int((radius * radius - dy * dy) ** 0.5)
        hline(bitmap, cx - half, cy + dy, 2 * half + 1, color)


def checkerboard(bitmap: Bitmap, rect: Rect, cell: int, a: Color,
                 b: Color) -> None:
    """Checkerboard fill — a worst-case pattern for the encoders (E1)."""
    clipped = rect.intersect(bitmap.bounds)
    for ty in range(clipped.y, clipped.y2, cell):
        for tx in range(clipped.x, clipped.x2, cell):
            parity = ((tx - clipped.x) // cell + (ty - clipped.y) // cell) % 2
            color = a if parity == 0 else b
            tile = Rect(tx, ty, cell, cell).intersect(clipped)
            bitmap.fill_rect(tile, color)

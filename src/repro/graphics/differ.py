"""Change-aware damage refinement: the tile-grid frame differ.

Damage tracking is *geometric* — a widget that repaints reports its rect
dirty whether or not any pixel actually changed.  Blinking clocks, focus
churn and full-panel redraws therefore push identical pixels down every
session's encode path.  :class:`TileDiffer` closes that gap: it retains a
shadow copy of the framebuffer and, before damage is distributed, compares
the damaged rects against the shadow at 16x16-tile granularity with one
vectorised block-equality pass per rect.  Only tiles whose pixels truly
changed survive; rows of surviving tiles are merged into rects and clipped
back to the original damage.

The refinement is sound by construction: a pixel can only be dropped when
it is byte-identical to the shadow, and the shadow is updated to the
current framebuffer content over every damaged rect processed — so the
refined region always covers every actually-changed pixel (the property
tests pin this down).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.graphics.bitmap import Bitmap
from repro.graphics.region import Rect

_TILE = 16


class TileDiffer:
    """Refines damage rects to the 16x16 tiles whose pixels changed.

    One differ serves one framebuffer's distribution point (the UniInt
    server keeps one, shared by all sessions): the shadow models "what has
    been reported downstream so far", which is the same for every session
    because sessions accumulate the refined region independently.
    """

    def __init__(self, tile: int = _TILE) -> None:
        if tile < 1:
            raise ValueError(f"tile size must be positive: {tile}")
        self.tile = tile
        self._shadow: Optional[np.ndarray] = None
        # statistics for the bandwidth experiments / ablations
        self.tiles_checked = 0
        self.tiles_dropped = 0
        self.rects_in = 0
        self.rects_out = 0

    # -- shadow lifecycle ---------------------------------------------------

    def reset(self) -> None:
        """Forget the shadow; the next refine passes damage through."""
        self._shadow = None

    @property
    def primed(self) -> bool:
        return self._shadow is not None

    # -- refinement ---------------------------------------------------------

    def refine(self, framebuffer: Bitmap,
               rects: Iterable[Rect]) -> list[Rect]:
        """The sub-rects of ``rects`` whose pixels differ from the shadow.

        The shadow is brought up to date over every input rect, so damage
        dropped here is damage whose content downstream consumers already
        have.  On the first call (or after a framebuffer resize) there is
        no shadow yet: the rects pass through unrefined and the shadow is
        primed.
        """
        pixels = framebuffer.pixels
        if self._shadow is None or self._shadow.shape != pixels.shape:
            self._shadow = pixels.copy()
            kept = [r for r in rects if not r.is_empty]
            self.rects_in += len(kept)
            self.rects_out += len(kept)
            return kept
        out: list[Rect] = []
        bounds = framebuffer.bounds
        for rect in rects:
            clipped = rect.intersect(bounds)
            if clipped.is_empty:
                continue
            self.rects_in += 1
            out.extend(self._refine_one(pixels, clipped))
        self.rects_out += len(out)
        return out

    def _refine_one(self, pixels: np.ndarray, rect: Rect) -> list[Rect]:
        tile = self.tile
        fresh = pixels[rect.y:rect.y2, rect.x:rect.x2]
        stale = self._shadow[rect.y:rect.y2, rect.x:rect.x2]
        core = (fresh != stale).any(axis=2)
        # the shadow absorbs the damaged rect's content, kept or dropped
        stale[...] = fresh
        # place the comparison into the tile grid the rect overlaps
        gx0 = rect.x - rect.x % tile
        gy0 = rect.y - rect.y % tile
        tiles_x = -(-(rect.x2 - gx0) // tile)
        tiles_y = -(-(rect.y2 - gy0) // tile)
        changed = np.zeros((tiles_y * tile, tiles_x * tile), dtype=bool)
        ry0, rx0 = rect.y - gy0, rect.x - gx0
        changed[ry0:ry0 + rect.h, rx0:rx0 + rect.w] = core
        hot = changed.reshape(tiles_y, tile, tiles_x, tile).any(axis=(1, 3))
        self.tiles_checked += tiles_y * tiles_x
        self.tiles_dropped += int(hot.size - np.count_nonzero(hot))
        if not hot.any():
            return []
        if hot.all():
            return [rect]
        # merge runs of hot tiles per tile-row, then identical vertical runs
        out: list[Rect] = []
        active: dict[tuple[int, int], Rect] = {}
        for tyi in range(tiles_y):
            row = hot[tyi]
            edges = np.flatnonzero(np.diff(np.concatenate(
                ([False], row, [False])).astype(np.int8)))
            current: dict[tuple[int, int], Rect] = {}
            for x0t, x1t in zip(edges[::2], edges[1::2]):
                run = Rect(gx0 + int(x0t) * tile, gy0 + tyi * tile,
                           int(x1t - x0t) * tile, tile).intersect(rect)
                key = (run.x, run.w)
                prev = active.get(key)
                if prev is not None and prev.y2 == run.y:
                    current[key] = Rect(prev.x, prev.y, prev.w,
                                        prev.h + run.h)
                else:
                    if prev is not None:
                        out.append(prev)
                    current[key] = run
            for key, prev in active.items():
                if key not in current:
                    out.append(prev)
            active = current
        out.extend(active.values())
        out.sort(key=lambda r: (r.y, r.x))
        return out

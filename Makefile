# Developer entry points.  Tier-1 tests must stay fast; benchmarks are
# opt-in and emit machine-readable JSON for the BENCH_* trajectory files.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-backpressure bench-broadcast bench-commands \
	bench-dynamic-panels bench-encodings bench-encode-core bench-fleet \
	bench-home-scale bench-multiuser bench-resilience bench-surfaces \
	bench-smoke

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-json=BENCH_RESULTS.json

# The shared-encode broadcast experiment: writes BENCH_BROADCAST.json with
# per-session-count timings for shared vs per-session encoding.
bench-broadcast:
	$(PYTHON) -m pytest benchmarks/bench_home_scale.py -q -k broadcast \
		--benchmark-json=BENCH_HOME_SCALE.json

bench-encodings:
	$(PYTHON) -m pytest benchmarks/bench_encodings.py -q \
		--benchmark-json=BENCH_ENCODINGS.json

# Vectorized encode core vs the seed's scalar encoders, plus the frame
# differ's unchanged-redraw ablation: writes BENCH_ENCODE_CORE.json.
bench-encode-core:
	$(PYTHON) -m pytest benchmarks/bench_encode_core.py -q \
		--benchmark-json=BENCH_ENCODE_CORE_ROWS.json

bench-home-scale:
	$(PYTHON) -m pytest benchmarks/bench_home_scale.py -q \
		--benchmark-json=BENCH_HOME_SCALE.json

# Multi-user homes: 1/2/4/8 residents x 3 devices each under panel churn,
# server-side broadcast cost vs per-session encoding: writes
# BENCH_MULTIUSER.json (before/after + workload + timing method).  Also
# runs in the CI bench-smoke job at tiny workload like every benchmark.
bench-multiuser:
	$(PYTHON) -m pytest benchmarks/bench_home_scale.py -q -k multiuser \
		--benchmark-json=BENCH_MULTIUSER_ROWS.json

# Per-user UI surfaces: 1 surface x 8 sessions (the PR 4 broadcast shape)
# vs 8 surfaces x 1 session vs mixed, plus isolated single-view churn:
# proves surface multiplexing keeps the same-surface fast path (~1.1x of
# BENCH_MULTIUSER) while cross-surface churn is wire-silent.  Writes
# BENCH_SURFACES.json; also runs in the CI bench-smoke job.
bench-surfaces:
	$(PYTHON) -m pytest benchmarks/bench_surfaces.py -q \
		--benchmark-json=BENCH_SURFACES_ROWS.json

# Many-home fleet on one selectors reactor: 128 homes over real TCP
# loopback sockets under appliance churn, plus the one-home-stalled
# isolation case.  Writes BENCH_FLEET.json — in smoke mode too (64
# homes), because the 2x-p99 isolation acceptance rides on the recorded
# numbers.  Also runs in the CI bench-smoke job.
bench-fleet:
	$(PYTHON) -m pytest benchmarks/bench_fleet.py -q \
		--benchmark-disable

# Self-healing under the seeded fault storm: a 32-home resilient TCP
# fleet absorbs RSTs, 2 s partitions, device-leg frame drops and one
# crashed home, then repeated RST rounds measure the warm-resume
# reconnect distribution.  Writes BENCH_RESILIENCE.json — in smoke mode
# too (8 homes), because the zero-lost-sessions / one-resync-per-
# reconnect acceptance rides on the recorded numbers.  Also runs in the
# CI chaos-smoke job.
bench-resilience:
	$(PYTHON) -m pytest benchmarks/bench_resilience.py -q \
		--benchmark-disable

# Descriptor-generated panels vs the hand-written builders: full panel
# regeneration cost and first-frame wire bytes for the same appliance
# mix, asserted at <=1.1x parity, plus the descriptor-only refrigerator.
# Writes BENCH_DYNAMIC_PANELS.json — in smoke mode too, because the
# parity acceptance rides on the recorded numbers.  Also runs in the CI
# bench-smoke job.
bench-dynamic-panels:
	$(PYTHON) -m pytest benchmarks/bench_dynamic_panels.py -q \
		--benchmark-disable

# Command-spine dispatch overhead vs direct send_request on the real
# home actuation path (asserted <=1.05x), the bare-bus tracking cost in
# microseconds, and throughput under 8-user coalescible churn.  Writes
# BENCH_COMMANDS.json — in smoke mode too, because the overhead
# acceptance rides on the recorded numbers.  Also runs in the CI
# bench-smoke job.
bench-commands:
	$(PYTHON) -m pytest benchmarks/bench_commands.py -q \
		--benchmark-disable

# Credit backpressure on the 9600 bps phone bearer vs unbounded queueing:
# writes BENCH_BACKPRESSURE.json (before/after + fast-path regression).
bench-backpressure:
	$(PYTHON) -m pytest benchmarks/bench_backpressure.py -q \
		--benchmark-json=BENCH_BACKPRESSURE_ROWS.json

# Harness smoke: every benchmark at tiny workload, timings disabled, no
# BENCH_*.json written.  CI runs this so refactors can't silently break
# the bench harness.
bench-smoke:
	$(PYTHON) -m pytest benchmarks -q --smoke --benchmark-disable
